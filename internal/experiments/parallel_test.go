package experiments

import (
	"reflect"
	"sync"
	"testing"

	"github.com/gtsc-sim/gtsc/internal/check"
	"github.com/gtsc-sim/gtsc/internal/gpu"
	"github.com/gtsc-sim/gtsc/internal/memsys"
	"github.com/gtsc-sim/gtsc/internal/sim"
	"github.com/gtsc-sim/gtsc/internal/workload"
)

// TestParallelSessionMatchesSerial proves the worker-pool engine is
// deterministically equivalent to the serial path: the full Fig-12
// grid run with Workers=1 and Workers=4 must produce bit-identical
// stats.Run results for every cached simulation, and the figure's
// derived numbers must match exactly.
func TestParallelSessionMatchesSerial(t *testing.T) {
	serialCfg := tinyConfig()
	serialCfg.Workers = 1
	serial := NewSession(serialCfg)
	serialFig, err := serial.RunFig12()
	if err != nil {
		t.Fatal(err)
	}

	parallelCfg := tinyConfig()
	parallelCfg.Workers = 4
	par := NewSession(parallelCfg)
	parFig, err := par.RunFig12()
	if err != nil {
		t.Fatal(err)
	}

	sRuns, pRuns := serial.CachedRuns(), par.CachedRuns()
	if len(sRuns) == 0 {
		t.Fatal("serial session cached nothing")
	}
	if len(sRuns) != len(pRuns) {
		t.Fatalf("cache sizes differ: serial %d, parallel %d", len(sRuns), len(pRuns))
	}
	for k, sr := range sRuns {
		pr, ok := pRuns[k]
		if !ok {
			t.Fatalf("parallel session missing %q", k)
		}
		if !reflect.DeepEqual(sr, pr) {
			t.Errorf("stats.Run for %q differs between serial and parallel:\nserial:   %+v\nparallel: %+v", k, *sr, *pr)
		}
	}
	if !reflect.DeepEqual(serialFig, parFig) {
		t.Errorf("Fig12 derived results differ:\nserial:   %+v\nparallel: %+v", serialFig, parFig)
	}
}

// TestCacheKeyingNoCollision pins the cache key: variants differing
// only in adaptive/forwardAll/oldCopy (or lease) must occupy distinct
// cache slots — a collision would silently serve one configuration's
// results as another's.
func TestCacheKeyingNoCollision(t *testing.T) {
	s := NewSession(tinyConfig())
	base := variant{proto: memsys.GTSC, cons: gpu.RC}
	variants := []variant{
		base,
		{proto: memsys.GTSC, cons: gpu.RC, adaptive: true},
		{proto: memsys.GTSC, cons: gpu.RC, forwardAll: true},
		{proto: memsys.GTSC, cons: gpu.RC, oldCopy: true},
		{proto: memsys.GTSC, cons: gpu.RC, lease: 12},
	}
	keys := map[string]variant{}
	for _, v := range variants {
		k := s.key("BH", v)
		if prev, dup := keys[k]; dup {
			t.Fatalf("key collision: %+v and %+v both map to %q", prev, v, k)
		}
		keys[k] = v
	}
	// And the runs must actually execute separately.
	wl := workload.CoherenceSet()[0]
	for _, v := range variants {
		if _, err := s.run(wl, v); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Executed(); got != uint64(len(variants)) {
		t.Fatalf("executed %d simulations for %d distinct variants", got, len(variants))
	}
}

// TestCacheHitDoesNotRerun asserts a cache hit never re-runs the
// simulator: repeated and concurrent requests for the same variant
// leave the execution counter at one (single flight).
func TestCacheHitDoesNotRerun(t *testing.T) {
	s := NewSession(tinyConfig())
	wl := workload.CoherenceSet()[0]
	first, err := s.run(wl, vGTSCRC)
	if err != nil {
		t.Fatal(err)
	}
	if s.Executed() != 1 {
		t.Fatalf("executed = %d after first run", s.Executed())
	}
	// Hammer the same key from many goroutines: still one execution,
	// and every caller gets the same *stats.Run.
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r, err := s.run(wl, vGTSCRC)
			if err != nil {
				t.Error(err)
			}
			if r != first {
				t.Error("cache hit returned a different run object")
			}
		}()
	}
	wg.Wait()
	if s.Executed() != 1 {
		t.Fatalf("cache hits re-ran the simulator: executed = %d", s.Executed())
	}
}

// TestObserverIsolationParallel asserts the observer contract of the
// parallel engine: every concurrently running simulation gets its own
// coherence.Observer (here a check.Recorder), never a shared one.
// Under -race this also proves the recorders see no concurrent writes.
func TestObserverIsolationParallel(t *testing.T) {
	wl := workload.CoherenceSet()[0]
	const n = 4
	recs := make([]*check.Recorder, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		recs[i] = check.NewRecorder()
		wg.Add(1)
		go func() {
			defer wg.Done()
			cfg := sim.DefaultConfig()
			cfg.Mem.Protocol = memsys.GTSC
			cfg.Mem.NumSMs = 4
			cfg.Mem.NumBanks = 4
			cfg.SM.Consistency = gpu.RC
			cfg.Observer = recs[i]
			if _, err := wl.Build(1).Run(cfg); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	want := len(recs[0].Ops())
	if want == 0 {
		t.Fatal("recorder saw no operations")
	}
	for i, r := range recs {
		if got := len(r.Ops()); got != want {
			t.Errorf("recorder %d saw %d ops, recorder 0 saw %d — identical hermetic runs must record identically", i, got, want)
		}
	}
}
