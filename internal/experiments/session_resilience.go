package experiments

// Crash-safety, cancellation and fault-tolerance for experiment
// sessions:
//
//   - AttachJournal gives the session a durable append-only log of
//     completed runs (internal/checkpoint.Journal). Every successful
//     simulation is fsynced to the journal before its result becomes
//     observable; a restarted session replays the journal into the
//     result cache and re-executes ONLY the missing (workload,
//     variant) cells. Replay never touches the executed counter, so
//     "a completed run is never re-executed" is directly testable.
//   - do() converts worker panics into *diag.WorkerPanicError, cached
//     for the panicking key: one blown-up run fails its own cell.
//   - run() retries transient fault-injected failures (deadlocks
//     while a fault plan is active) with exponential backoff and a
//     per-attempt derived fault seed.
//   - Missing() is the explicit manifest of requested-but-failed runs
//     that KeepGoing figure assembly leaves out.

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/fnv"
	"runtime/debug"
	"time"

	"github.com/gtsc-sim/gtsc/internal/checkpoint"
	"github.com/gtsc-sim/gtsc/internal/diag"
	"github.com/gtsc-sim/gtsc/internal/stats"
)

// journalRecord is one gob-encoded journal payload. The first record
// of every journal is a header (Key empty, Run nil) carrying the
// session's config signature; every later record is a completed run
// keyed by the session cache key. stats.Run is plain exported values,
// so the gob round-trip is bit-exact.
type journalRecord struct {
	ConfigSig uint64
	Key       string
	Run       *stats.Run
}

// configSig canonically hashes the result-affecting part of the
// session configuration. Workers, SimWorkers, RetryTransient and
// KeepGoing only change scheduling/error handling — results are
// bit-identical across them — so they are excluded: a journal written
// at -j 16 -simworkers 4 resumes cleanly at -j 1.
func (s *Session) configSig() uint64 {
	cfg := s.Cfg
	cfg.Workers = 0
	cfg.SimWorkers = 0
	cfg.RetryTransient = 0
	cfg.KeepGoing = false
	h := fnv.New64a()
	fmt.Fprintf(h, "%+v", cfg)
	return h.Sum64()
}

// AttachJournal opens (or creates) the crash-safe run journal at path
// and replays every intact record into the session's result cache,
// returning how many runs were restored. A torn final record — the
// residue of a kill mid-append — is dropped and truncated, not fatal
// (see JournalDroppedTail); a journal written by a session with a
// different result-affecting configuration is rejected. After a
// successful attach, every run the session completes is durably
// appended, so a killed sweep restarted with the same journal
// re-executes only what is missing.
//
// Attach before running drivers: replay only fills cache keys that
// are not already present.
func (s *Session) AttachJournal(path string) (replayed int, err error) {
	s.jmu.Lock()
	defer s.jmu.Unlock()
	if s.journal != nil {
		return 0, errors.New("experiments: session already has a journal attached")
	}
	sig := s.configSig()
	sawHeader := false
	j, err := checkpoint.OpenJournal(path, func(payload []byte) error {
		var rec journalRecord
		if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&rec); err != nil {
			return fmt.Errorf("experiments: undecodable journal record: %w", err)
		}
		if !sawHeader {
			if rec.Key != "" || rec.Run != nil {
				return errors.New("experiments: journal has no session header record")
			}
			if rec.ConfigSig != sig {
				return fmt.Errorf("experiments: journal %s was written under a different configuration (signature %#x, this session %#x); refusing to mix results", path, rec.ConfigSig, sig)
			}
			sawHeader = true
			return nil
		}
		if rec.Key == "" || rec.Run == nil {
			return errors.New("experiments: malformed journal run record")
		}
		s.mu.Lock()
		if _, ok := s.cache[rec.Key]; !ok {
			e := &cacheEntry{done: make(chan struct{}), run: rec.Run}
			close(e.done)
			s.cache[rec.Key] = e
			replayed++
		}
		s.mu.Unlock()
		return nil
	})
	if err != nil {
		return 0, err
	}
	if !sawHeader {
		// Fresh (or fully torn) journal: stamp the header first, so any
		// later attach can validate compatibility.
		payload, err := encodeRecord(journalRecord{ConfigSig: sig})
		if err == nil {
			err = j.Append(payload)
		}
		if err != nil {
			j.Close()
			return 0, err
		}
	}
	s.journal = j
	s.dropped = j.DroppedTail
	return replayed, nil
}

// JournalDroppedTail reports that AttachJournal found and discarded a
// torn final record — the expected aftermath of a crash mid-append.
func (s *Session) JournalDroppedTail() bool {
	s.jmu.Lock()
	defer s.jmu.Unlock()
	return s.dropped
}

// CloseJournal detaches and closes the journal, surfacing any append
// error that occurred during the session. Safe to call without an
// attached journal.
func (s *Session) CloseJournal() error {
	s.jmu.Lock()
	defer s.jmu.Unlock()
	if s.journal == nil {
		return s.journalErr
	}
	err := s.journal.Close()
	s.journal = nil
	if s.journalErr != nil {
		return s.journalErr
	}
	return err
}

// journalRun durably appends one completed run. Called by do() before
// the result becomes observable. A failing journal never fails the
// run that produced the result; the first append error is latched and
// reported by CloseJournal.
func (s *Session) journalRun(key string, run *stats.Run) {
	s.jmu.Lock()
	defer s.jmu.Unlock()
	if s.journal == nil || s.journalErr != nil {
		return
	}
	payload, err := encodeRecord(journalRecord{Key: key, Run: run})
	if err == nil {
		err = s.journal.Append(payload)
	}
	if err != nil {
		s.journalErr = fmt.Errorf("experiments: journal append: %w", err)
	}
}

func encodeRecord(rec journalRecord) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(rec); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Missing lists the cache keys of runs that were requested and failed
// (sorted) — the manifest of cells absent from KeepGoing partial
// output. In-flight runs are not listed.
func (s *Session) Missing() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []string
	for k, e := range s.cache {
		select {
		case <-e.done:
			if e.err != nil {
				out = append(out, k)
			}
		default: // still in flight
		}
	}
	return sortedStrings(out)
}

func sortedStrings(xs []string) []string {
	m := make(map[string]struct{}, len(xs))
	for _, x := range xs {
		m[x] = struct{}{}
	}
	return sortedKeys(m)
}

// protect runs exec, converting a panic into a typed error so one
// panicking simulation aborts only its own cache entry.
func (s *Session) protect(key string, exec func() (*stats.Run, error)) (run *stats.Run, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &diag.WorkerPanicError{
				Key:   key,
				Value: fmt.Sprint(r),
				Stack: string(debug.Stack()),
			}
		}
	}()
	return exec()
}

// transient classifies an error as a retryable fault-injected
// failure: a deadlock/progress abort while a fault plan is active.
// Cancellation and genuine protocol errors are never transient.
func (s *Session) transient(err error) bool {
	if s.Cfg.FaultSeed == 0 {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var de *diag.DeadlockError
	return errors.As(err, &de)
}

// RetryBackoff is the exponential backoff before retry attempt n
// (n >= 1): 25ms, 50ms, 100ms, ... capped at 2s. Exported so the
// distributed sweep coordinator (internal/sweep) retries transient
// failures on exactly the session's schedule.
func RetryBackoff(attempt int) time.Duration {
	d := 25 * time.Millisecond << (attempt - 1)
	if d > 2*time.Second || d <= 0 {
		d = 2 * time.Second
	}
	return d
}

// DeriveFaultSeed maps (base seed, attempt) to the fault seed of one
// attempt. Attempt 0 uses the configured seed itself; retries walk a
// deterministic sequence of fresh seeds, because replaying the same
// seed in this deterministic engine would reproduce the identical
// failure. Exported so sweep workers (internal/sweep) derive the same
// per-attempt seeds a local session would, keeping a distributed retry
// bit-compatible with a local one.
func DeriveFaultSeed(seed int64, attempt int) int64 {
	if attempt == 0 {
		return seed
	}
	d := seed + int64(attempt)*0x9E3779B9
	if d == 0 {
		d = 0x9E3779B9 // seed 0 means "fault injection off"
	}
	return d
}
