package experiments

import (
	"fmt"
	"io"

	"github.com/gtsc-sim/gtsc/internal/workload"
)

// AblationVisibility evaluates the two update-visibility designs of
// §V-A: option 1 (delay readers of a locked line until the store
// acknowledges — the paper's choice) against option 2 (keep the old
// copy readable during the store). The paper found option 1's overhead
// negligible, avoiding option 2's extra storage.
type AblationVisibility struct {
	Workloads []string
	Option1   map[string]uint64 // cycles, delay-readers (default)
	Option2   map[string]uint64 // cycles, keep-old-copy
	// Option2Speedup is the geomean cycles(opt1)/cycles(opt2)
	// (paper: ~1.0 — negligible difference).
	Option2Speedup float64
}

// RunAblationVisibility executes the comparison over the coherence set
// under G-TSC-RC.
func (s *Session) RunAblationVisibility() (*AblationVisibility, error) {
	out := &AblationVisibility{
		Workloads: names(workload.CoherenceSet()),
		Option1:   map[string]uint64{},
		Option2:   map[string]uint64{},
	}
	if err := s.prewarmGrid(workload.CoherenceSet(), vGTSCRC,
		variant{proto: vGTSCRC.proto, cons: vGTSCRC.cons, oldCopy: true}); err != nil {
		return nil, err
	}
	var ratios []float64
	for _, wl := range workload.CoherenceSet() {
		o1, err := s.run(wl, vGTSCRC)
		if err != nil {
			return nil, err
		}
		o2, err := s.run(wl, variant{proto: vGTSCRC.proto, cons: vGTSCRC.cons, oldCopy: true})
		if err != nil {
			return nil, err
		}
		out.Option1[wl.Name] = o1.Cycles
		out.Option2[wl.Name] = o2.Cycles
		ratios = append(ratios, float64(o1.Cycles)/float64(o2.Cycles))
	}
	out.Option2Speedup = geomean(ratios)
	return out, nil
}

// Print renders the ablation.
func (r *AblationVisibility) Print(w io.Writer) {
	fmt.Fprintln(w, "SecV-A ablation: update visibility — option 1 (delay readers) vs option 2 (old copy)")
	t := newTable(w)
	t.row("Benchmark", "opt1 cycles", "opt2 cycles", "opt1/opt2")
	for _, n := range r.Workloads {
		t.row(n,
			fmt.Sprintf("%d", r.Option1[n]),
			fmt.Sprintf("%d", r.Option2[n]),
			fmt.Sprintf("%.3f", float64(r.Option1[n])/float64(r.Option2[n])))
	}
	t.flush()
	fmt.Fprintf(w, "geomean opt1/opt2 = %.3f (paper: negligible difference; option 1 avoids the extra storage)\n",
		r.Option2Speedup)
}

// AblationCombining evaluates §V-B: merging same-block reads in the
// MSHR (the paper's choice) against forwarding every request to L2.
// The paper reports forwarding increases memory requests by 12–35%.
type AblationCombining struct {
	Workloads []string
	// Requests/flits with combining (default) and with forward-all.
	CombineMsgs  map[string]uint64
	ForwardMsgs  map[string]uint64
	CombineFlits map[string]uint64
	ForwardFlits map[string]uint64
	// MsgIncrease is the geomean relative increase in L1->L2 requests
	// from forwarding (paper: 12-35%).
	MsgIncrease float64
}

// RunAblationCombining executes the comparison over the coherence set
// under G-TSC-RC.
func (s *Session) RunAblationCombining() (*AblationCombining, error) {
	out := &AblationCombining{
		Workloads:    names(workload.CoherenceSet()),
		CombineMsgs:  map[string]uint64{},
		ForwardMsgs:  map[string]uint64{},
		CombineFlits: map[string]uint64{},
		ForwardFlits: map[string]uint64{},
	}
	if err := s.prewarmGrid(workload.CoherenceSet(), vGTSCRC,
		variant{proto: vGTSCRC.proto, cons: vGTSCRC.cons, forwardAll: true}); err != nil {
		return nil, err
	}
	var ratios []float64
	for _, wl := range workload.CoherenceSet() {
		c, err := s.run(wl, vGTSCRC)
		if err != nil {
			return nil, err
		}
		f, err := s.run(wl, variant{proto: vGTSCRC.proto, cons: vGTSCRC.cons, forwardAll: true})
		if err != nil {
			return nil, err
		}
		out.CombineMsgs[wl.Name] = c.NoC.MsgsToL2
		out.ForwardMsgs[wl.Name] = f.NoC.MsgsToL2
		out.CombineFlits[wl.Name] = c.NoC.TotalFlits()
		out.ForwardFlits[wl.Name] = f.NoC.TotalFlits()
		ratios = append(ratios, float64(f.NoC.MsgsToL2)/float64(c.NoC.MsgsToL2))
	}
	out.MsgIncrease = geomean(ratios) - 1
	return out, nil
}

// Print renders the ablation.
func (r *AblationCombining) Print(w io.Writer) {
	fmt.Fprintln(w, "SecV-B ablation: MSHR request combining vs forwarding all reads to L2")
	t := newTable(w)
	t.row("Benchmark", "combine msgs", "forward msgs", "increase", "combine flits", "forward flits")
	for _, n := range r.Workloads {
		inc := float64(r.ForwardMsgs[n])/float64(r.CombineMsgs[n]) - 1
		t.row(n,
			fmt.Sprintf("%d", r.CombineMsgs[n]),
			fmt.Sprintf("%d", r.ForwardMsgs[n]),
			fmt.Sprintf("%+.0f%%", 100*inc),
			fmt.Sprintf("%d", r.CombineFlits[n]),
			fmt.Sprintf("%d", r.ForwardFlits[n]))
	}
	t.flush()
	fmt.Fprintf(w, "geomean request increase from forward-all: %.0f%% (paper: 12-35%%)\n", 100*r.MsgIncrease)
}

// RunAll executes every experiment and prints each in order — the
// cmd/gtscbench entry point.
func (s *Session) RunAll(w io.Writer) error {
	fmt.Fprintf(w, "G-TSC experiment suite (scale %d, %d SMs, %d L2 banks, G-TSC lease %d, TC lease %d)\n\n",
		s.Cfg.Scale, s.Cfg.NumSMs, s.Cfg.NumBanks, s.Cfg.GTSCLease, s.Cfg.TCLease)
	type exp struct {
		name string
		run  func() (interface{ Print(io.Writer) }, error)
	}
	exps := []exp{
		{"table2", func() (interface{ Print(io.Writer) }, error) { return s.RunTableII() }},
		{"fig12", func() (interface{ Print(io.Writer) }, error) { return s.RunFig12() }},
		{"fig13", func() (interface{ Print(io.Writer) }, error) { return s.RunFig13() }},
		{"fig14", func() (interface{ Print(io.Writer) }, error) { return s.RunFig14() }},
		{"fig15", func() (interface{ Print(io.Writer) }, error) { return s.RunFig15() }},
		{"fig16", func() (interface{ Print(io.Writer) }, error) { return s.RunFig16() }},
		{"fig17", func() (interface{ Print(io.Writer) }, error) { return s.RunFig17() }},
		{"expiry", func() (interface{ Print(io.Writer) }, error) { return s.RunExpiryMiss() }},
		{"vis", func() (interface{ Print(io.Writer) }, error) { return s.RunAblationVisibility() }},
		{"combine", func() (interface{ Print(io.Writer) }, error) { return s.RunAblationCombining() }},
		{"lease", func() (interface{ Print(io.Writer) }, error) { return s.RunAblationLease() }},
		{"tso", func() (interface{ Print(io.Writer) }, error) { return s.RunConsistencySpectrum() }},
		{"scale", func() (interface{ Print(io.Writer) }, error) { return s.RunScalability() }},
		{"micro", func() (interface{ Print(io.Writer) }, error) { return s.RunMicroTable() }},
		{"platform", func() (interface{ Print(io.Writer) }, error) { return s.RunPlatform() }},
		{"cache", func() (interface{ Print(io.Writer) }, error) { return s.RunCacheSweep() }},
		{"dir", func() (interface{ Print(io.Writer) }, error) { return s.RunDirectoryCompare() }},
	}
	for _, e := range exps {
		res, err := e.run()
		if err != nil {
			return fmt.Errorf("%s: %w", e.name, err)
		}
		res.Print(w)
		fmt.Fprintln(w)
	}
	return nil
}

// RunOne executes a single named experiment ("table2", "fig12" ...
// "combine") and prints it.
func (s *Session) RunOne(name string, w io.Writer) error {
	var res interface{ Print(io.Writer) }
	var err error
	switch name {
	case "table2":
		res, err = s.RunTableII()
	case "fig12":
		res, err = s.RunFig12()
	case "fig13":
		res, err = s.RunFig13()
	case "fig14":
		res, err = s.RunFig14()
	case "fig15":
		res, err = s.RunFig15()
	case "fig16":
		res, err = s.RunFig16()
	case "fig17":
		res, err = s.RunFig17()
	case "expiry":
		res, err = s.RunExpiryMiss()
	case "vis":
		res, err = s.RunAblationVisibility()
	case "combine":
		res, err = s.RunAblationCombining()
	case "lease":
		res, err = s.RunAblationLease()
	case "tso":
		res, err = s.RunConsistencySpectrum()
	case "scale":
		res, err = s.RunScalability()
	case "micro":
		res, err = s.RunMicroTable()
	case "platform":
		res, err = s.RunPlatform()
	case "cache":
		res, err = s.RunCacheSweep()
	case "dir":
		res, err = s.RunDirectoryCompare()
	default:
		return fmt.Errorf("unknown experiment %q (want table2, fig12..fig17, expiry, vis, combine, lease, tso, scale, micro, platform, cache, dir)", name)
	}
	if err != nil {
		return err
	}
	res.Print(w)
	return nil
}
