package experiments

import (
	"fmt"
	"io"

	"github.com/gtsc-sim/gtsc/internal/workload"
)

// TableII reproduces Table II: absolute execution cycles (in millions)
// of the no-L1 baseline (BL) and TC on every benchmark, on this
// simulator. (The paper's extra columns compare against the original
// TC simulator, which we do not have; EXPERIMENTS.md records the
// paper's numbers next to ours.)
type TableII struct {
	Workloads []string
	BLCycles  map[string]uint64
	TCCycles  map[string]uint64
	// Missing lists failed runs the table omits (KeepGoing sessions);
	// empty when every cell completed.
	Missing []string
}

// RunTableII executes the Table II matrix.
func (s *Session) RunTableII() (*TableII, error) {
	out := &TableII{
		Workloads: names(workload.All()),
		BLCycles:  map[string]uint64{},
		TCCycles:  map[string]uint64{},
	}
	if err := s.prewarmGrid(workload.All(), vBL, vTCRC); err != nil {
		return nil, err
	}
	for _, wl := range workload.All() {
		bl, err := s.run(wl, vBL)
		if err != nil {
			if s.Cfg.KeepGoing {
				continue // row omitted; Missing records why
			}
			return nil, err
		}
		// The paper pairs plain TC with each model; its Table II column
		// is TC under the protocol's natural (RC/TC-Weak) setting.
		tc, err := s.run(wl, vTCRC)
		if err != nil {
			if s.Cfg.KeepGoing {
				continue
			}
			return nil, err
		}
		out.BLCycles[wl.Name] = bl.Cycles
		out.TCCycles[wl.Name] = tc.Cycles
	}
	out.Missing = s.Missing()
	return out, nil
}

// Print renders the table. Rows whose runs failed (KeepGoing partial
// output) are skipped and the missing-runs manifest printed instead.
func (r *TableII) Print(w io.Writer) {
	fmt.Fprintln(w, "Table II: absolute execution cycles of BL and TC (this simulator)")
	t := newTable(w)
	t.row("Benchmark", "BL (cycles)", "TC (cycles)", "TC/BL")
	for _, n := range r.Workloads {
		if _, ok := r.BLCycles[n]; !ok {
			continue
		}
		t.row(n,
			fmt.Sprintf("%d", r.BLCycles[n]),
			fmt.Sprintf("%d", r.TCCycles[n]),
			fmt.Sprintf("%.2f", float64(r.TCCycles[n])/float64(r.BLCycles[n])))
	}
	t.flush()
	printMissing(w, r.Missing)
}

// printMissing renders the missing-runs manifest of a partial figure
// or table (no output when nothing is missing).
func printMissing(w io.Writer, missing []string) {
	if len(missing) == 0 {
		return
	}
	fmt.Fprintf(w, "PARTIAL OUTPUT: %d run(s) failed and are omitted above:\n", len(missing))
	for _, k := range missing {
		fmt.Fprintf(w, "  missing %s\n", k)
	}
}

// Fig12 reproduces Figure 12: performance of G-TSC and TC under RC and
// SC, normalized to the no-L1 baseline (higher is better). The
// non-coherent set adds the Baseline-w/L1 bar.
type Fig12 struct {
	Coherent    []string
	NonCoherent []string
	// Norm[workload][series] = BL cycles / series cycles.
	Norm map[string]map[string]float64

	// Headline ratios over the coherence-requiring set (geomean):
	GTSCRCoverTCRC float64 // paper: ~1.38
	GTSCSCoverTCRC float64 // paper: ~1.26
	GTSCRCoverTCSC float64 // paper: ~1.84
	// Overhead of G-TSC-RC vs the non-coherent L1 on the second set
	// (paper: ~11%).
	GTSCvsL1NCOverhead float64
	// RC/SC speedup for G-TSC on the coherence set (paper: ~12%).
	GTSCRCoverSC float64

	// Missing lists failed runs (KeepGoing sessions): the bars they
	// would have fed are absent from Norm and the geomeans above are
	// taken over the workloads that completed. Empty when every cell
	// completed.
	Missing []string
}

// Fig12Series lists the bar order of the figure.
var Fig12Series = []string{"Baseline-w/L1", "G-TSC-RC", "G-TSC-SC", "TC-RC", "TC-SC"}

// RunFig12 executes the Fig 12 matrix.
func (s *Session) RunFig12() (*Fig12, error) {
	out := &Fig12{
		Coherent:    names(workload.CoherenceSet()),
		NonCoherent: names(workload.NonCoherenceSet()),
		Norm:        map[string]map[string]float64{},
	}
	jobs := s.gridJobs(workload.All(), vBL, vGTSCRC, vGTSCSC, vTCRC, vTCSC)
	jobs = append(jobs, s.gridJobs(workload.NonCoherenceSet(), vL1NC)...)
	if err := s.parallel(jobs); err != nil {
		return nil, err
	}
	var rcOverTCRC, scOverTCRC, rcOverTCSC, rcOverSC, overhead []float64
	for _, wl := range workload.All() {
		bl, err := s.run(wl, vBL)
		if err != nil {
			if s.Cfg.KeepGoing {
				continue // no baseline, no row; Missing records why
			}
			return nil, err
		}
		row := map[string]float64{}
		runs := map[string]variant{
			"G-TSC-RC": vGTSCRC, "G-TSC-SC": vGTSCSC,
			"TC-RC": vTCRC, "TC-SC": vTCSC,
		}
		if !wl.NeedsCoherence {
			runs["Baseline-w/L1"] = vL1NC
		}
		res := map[string]float64{}
		for label, v := range runs {
			r, err := s.run(wl, v)
			if err != nil {
				if s.Cfg.KeepGoing {
					continue // bar omitted; ratios below skip it
				}
				return nil, err
			}
			res[label] = float64(r.Cycles)
			row[label] = float64(bl.Cycles) / float64(r.Cycles)
		}
		out.Norm[wl.Name] = row
		// Each headline ratio is taken only when both of its operands
		// completed, so a partial row degrades the geomeans gracefully
		// instead of poisoning them.
		ratio := func(dst *[]float64, num, den string) {
			n, okN := res[num]
			d, okD := res[den]
			if okN && okD {
				*dst = append(*dst, n/d)
			}
		}
		if wl.NeedsCoherence {
			ratio(&rcOverTCRC, "TC-RC", "G-TSC-RC")
			ratio(&scOverTCRC, "TC-RC", "G-TSC-SC")
			ratio(&rcOverTCSC, "TC-SC", "G-TSC-RC")
			ratio(&rcOverSC, "G-TSC-SC", "G-TSC-RC")
		} else {
			ratio(&overhead, "G-TSC-RC", "Baseline-w/L1")
		}
	}
	out.GTSCRCoverTCRC = geomean(rcOverTCRC)
	out.GTSCSCoverTCRC = geomean(scOverTCRC)
	out.GTSCRCoverTCSC = geomean(rcOverTCSC)
	out.GTSCRCoverSC = geomean(rcOverSC)
	out.GTSCvsL1NCOverhead = geomean(overhead) - 1
	out.Missing = s.Missing()
	return out, nil
}

// Print renders the figure as a table of normalized bars.
func (r *Fig12) Print(w io.Writer) {
	fmt.Fprintln(w, "Fig 12: performance normalized to no-L1 baseline (higher is better)")
	t := newTable(w)
	t.row(append([]string{"Benchmark"}, Fig12Series...)...)
	rows := func(group []string) {
		for _, n := range group {
			cells := []string{n}
			for _, series := range Fig12Series {
				if v, ok := r.Norm[n][series]; ok {
					cells = append(cells, fmt.Sprintf("%.2f", v))
				} else {
					cells = append(cells, "-")
				}
			}
			t.row(cells...)
		}
	}
	rows(r.Coherent)
	t.row("--")
	rows(r.NonCoherent)
	t.flush()
	fmt.Fprintf(w, "geomean over coherence set: G-TSC-RC/TC-RC = %.2fx (paper ~1.38x)\n", r.GTSCRCoverTCRC)
	fmt.Fprintf(w, "geomean over coherence set: G-TSC-SC/TC-RC = %.2fx (paper ~1.26x)\n", r.GTSCSCoverTCRC)
	fmt.Fprintf(w, "geomean over coherence set: G-TSC-RC/TC-SC = %.2fx (paper ~1.84x)\n", r.GTSCRCoverTCSC)
	fmt.Fprintf(w, "geomean G-TSC RC-over-SC speedup = %.2fx (paper ~1.12x)\n", r.GTSCRCoverSC)
	fmt.Fprintf(w, "G-TSC overhead vs non-coherent L1 (second set) = %.0f%% (paper ~11%%)\n", 100*r.GTSCvsL1NCOverhead)
	printMissing(w, r.Missing)
}

// Fig13 reproduces Figure 13: pipeline stalls due to memory delay,
// normalized to the no-L1 baseline.
type Fig13 struct {
	Coherent    []string
	NonCoherent []string
	Norm        map[string]map[string]float64 // workload -> series -> stalls/BLstalls
	// TCOverGTSC is TC-RC stalls / G-TSC-RC stalls, geomean per set
	// (paper: ~1.45x on set 1, >2.4x on set 2).
	TCOverGTSCSet1 float64
	TCOverGTSCSet2 float64
}

// Fig13Series lists the series of the figure.
var Fig13Series = []string{"G-TSC-RC", "G-TSC-SC", "TC-RC", "TC-SC"}

// RunFig13 executes the Fig 13 matrix.
func (s *Session) RunFig13() (*Fig13, error) {
	out := &Fig13{
		Coherent:    names(workload.CoherenceSet()),
		NonCoherent: names(workload.NonCoherenceSet()),
		Norm:        map[string]map[string]float64{},
	}
	if err := s.prewarmGrid(workload.All(), vBL, vGTSCRC, vGTSCSC, vTCRC, vTCSC); err != nil {
		return nil, err
	}
	var set1, set2 []float64
	for _, wl := range workload.All() {
		bl, err := s.run(wl, vBL)
		if err != nil {
			return nil, err
		}
		blStalls := float64(bl.SM.MemStallCycles)
		if blStalls == 0 {
			blStalls = 1
		}
		row := map[string]float64{}
		stalls := map[string]float64{}
		for label, v := range map[string]variant{
			"G-TSC-RC": vGTSCRC, "G-TSC-SC": vGTSCSC,
			"TC-RC": vTCRC, "TC-SC": vTCSC,
		} {
			r, err := s.run(wl, v)
			if err != nil {
				return nil, err
			}
			st := float64(r.SM.MemStallCycles)
			stalls[label] = st
			row[label] = st / blStalls
		}
		out.Norm[wl.Name] = row
		ratio := stalls["TC-RC"] / maxf(stalls["G-TSC-RC"], 1)
		if wl.NeedsCoherence {
			set1 = append(set1, ratio)
		} else {
			set2 = append(set2, ratio)
		}
	}
	out.TCOverGTSCSet1 = geomean(set1)
	out.TCOverGTSCSet2 = geomean(set2)
	return out, nil
}

// Print renders the figure.
func (r *Fig13) Print(w io.Writer) {
	fmt.Fprintln(w, "Fig 13: pipeline stalls due to memory delay, normalized to no-L1 baseline")
	t := newTable(w)
	t.row(append([]string{"Benchmark"}, Fig13Series...)...)
	rows := func(group []string) {
		for _, n := range group {
			cells := []string{n}
			for _, series := range Fig13Series {
				cells = append(cells, fmt.Sprintf("%.2f", r.Norm[n][series]))
			}
			t.row(cells...)
		}
	}
	rows(r.Coherent)
	t.row("--")
	rows(r.NonCoherent)
	t.flush()
	fmt.Fprintf(w, "TC-RC/G-TSC-RC stalls: set1 %.2fx (paper ~1.45x), set2 %.2fx (paper >1.4x)\n",
		r.TCOverGTSCSet1, r.TCOverGTSCSet2)
}

// Fig14 reproduces Figure 14: G-TSC-RC performance across lease values
// (paper sweeps 8–20 and finds the protocol insensitive).
type Fig14 struct {
	Leases    []uint64
	Workloads []string
	// Norm[workload][lease] = cycles(lease=10) / cycles(lease).
	Norm map[string]map[uint64]float64
	// MaxSpread is the largest relative deviation from 1.0 observed
	// anywhere (paper: negligible).
	MaxSpread float64
}

// RunFig14 executes the lease sweep over the coherence set.
func (s *Session) RunFig14() (*Fig14, error) {
	out := &Fig14{
		Leases:    []uint64{8, 10, 12, 14, 16, 18, 20},
		Workloads: names(workload.CoherenceSet()),
		Norm:      map[string]map[uint64]float64{},
	}
	leaseVariants := make([]variant, 0, len(out.Leases)+1)
	leaseVariants = append(leaseVariants, variant{proto: vGTSCRC.proto, cons: vGTSCRC.cons, lease: 10})
	for _, lease := range out.Leases {
		leaseVariants = append(leaseVariants, variant{proto: vGTSCRC.proto, cons: vGTSCRC.cons, lease: lease})
	}
	if err := s.prewarmGrid(workload.CoherenceSet(), leaseVariants...); err != nil {
		return nil, err
	}
	for _, wl := range workload.CoherenceSet() {
		base, err := s.run(wl, variant{proto: vGTSCRC.proto, cons: vGTSCRC.cons, lease: 10})
		if err != nil {
			return nil, err
		}
		row := map[uint64]float64{}
		for _, lease := range out.Leases {
			r, err := s.run(wl, variant{proto: vGTSCRC.proto, cons: vGTSCRC.cons, lease: lease})
			if err != nil {
				return nil, err
			}
			v := float64(base.Cycles) / float64(r.Cycles)
			row[lease] = v
			if d := absf(v - 1); d > out.MaxSpread {
				out.MaxSpread = d
			}
		}
		out.Norm[wl.Name] = row
	}
	return out, nil
}

// Print renders the sweep.
func (r *Fig14) Print(w io.Writer) {
	fmt.Fprintln(w, "Fig 14: G-TSC-RC performance vs lease value, normalized to lease=10")
	t := newTable(w)
	head := []string{"Benchmark"}
	for _, l := range r.Leases {
		head = append(head, fmt.Sprintf("L=%d", l))
	}
	t.row(head...)
	for _, n := range r.Workloads {
		cells := []string{n}
		for _, l := range r.Leases {
			cells = append(cells, fmt.Sprintf("%.3f", r.Norm[n][l]))
		}
		t.row(cells...)
	}
	t.flush()
	fmt.Fprintf(w, "max deviation from 1.0 anywhere: %.1f%% (paper: insensitive in 8-20)\n", 100*r.MaxSpread)
}

// Fig15 reproduces Figure 15: NoC traffic (flits) normalized to the
// no-L1 baseline.
type Fig15 struct {
	Coherent    []string
	NonCoherent []string
	Norm        map[string]map[string]float64
	// Traffic reduction of G-TSC vs TC on the coherence set
	// (paper: ~20% under RC, ~15.7% under SC).
	ReductionRC float64
	ReductionSC float64
}

// RunFig15 executes the Fig 15 matrix.
func (s *Session) RunFig15() (*Fig15, error) {
	out := &Fig15{
		Coherent:    names(workload.CoherenceSet()),
		NonCoherent: names(workload.NonCoherenceSet()),
		Norm:        map[string]map[string]float64{},
	}
	if err := s.prewarmGrid(workload.All(), vBL, vGTSCRC, vGTSCSC, vTCRC, vTCSC); err != nil {
		return nil, err
	}
	var redRC, redSC []float64
	for _, wl := range workload.All() {
		bl, err := s.run(wl, vBL)
		if err != nil {
			return nil, err
		}
		blFlits := float64(bl.NoC.TotalFlits())
		row := map[string]float64{}
		flits := map[string]float64{}
		for label, v := range map[string]variant{
			"G-TSC-RC": vGTSCRC, "G-TSC-SC": vGTSCSC,
			"TC-RC": vTCRC, "TC-SC": vTCSC,
		} {
			r, err := s.run(wl, v)
			if err != nil {
				return nil, err
			}
			f := float64(r.NoC.TotalFlits())
			flits[label] = f
			row[label] = f / blFlits
		}
		out.Norm[wl.Name] = row
		if wl.NeedsCoherence {
			redRC = append(redRC, flits["G-TSC-RC"]/flits["TC-RC"])
			redSC = append(redSC, flits["G-TSC-SC"]/flits["TC-SC"])
		}
	}
	out.ReductionRC = 1 - geomean(redRC)
	out.ReductionSC = 1 - geomean(redSC)
	return out, nil
}

// Print renders the figure.
func (r *Fig15) Print(w io.Writer) {
	fmt.Fprintln(w, "Fig 15: NoC traffic (flits) normalized to no-L1 baseline (lower is better)")
	t := newTable(w)
	t.row(append([]string{"Benchmark"}, Fig13Series...)...)
	rows := func(group []string) {
		for _, n := range group {
			cells := []string{n}
			for _, series := range Fig13Series {
				cells = append(cells, fmt.Sprintf("%.2f", r.Norm[n][series]))
			}
			t.row(cells...)
		}
	}
	rows(r.Coherent)
	t.row("--")
	rows(r.NonCoherent)
	t.flush()
	fmt.Fprintf(w, "G-TSC traffic reduction vs TC (coherence set): RC %.0f%% (paper ~20%%), SC %.0f%% (paper ~15.7%%)\n",
		100*r.ReductionRC, 100*r.ReductionSC)
}

// Fig16 reproduces Figure 16: total GPU energy normalized to the
// no-L1 baseline.
type Fig16 struct {
	Coherent    []string
	NonCoherent []string
	Norm        map[string]map[string]float64
	// GTSCSavingVsTC is G-TSC-RC's energy saving relative to TC-RC on
	// the coherence set (paper: ~11%).
	GTSCSavingVsTC float64
	// GTSCSavingVsBL is the saving vs the no-L1 baseline (paper: ~11%).
	GTSCSavingVsBL float64
}

// RunFig16 executes the Fig 16 matrix.
func (s *Session) RunFig16() (*Fig16, error) {
	out := &Fig16{
		Coherent:    names(workload.CoherenceSet()),
		NonCoherent: names(workload.NonCoherenceSet()),
		Norm:        map[string]map[string]float64{},
	}
	if err := s.prewarmGrid(workload.All(), vBL, vGTSCRC, vGTSCSC, vTCRC, vTCSC); err != nil {
		return nil, err
	}
	var vsTC, vsBL []float64
	for _, wl := range workload.All() {
		bl, err := s.run(wl, vBL)
		if err != nil {
			return nil, err
		}
		blE := bl.EnergyJ.Total()
		row := map[string]float64{}
		energy := map[string]float64{}
		for label, v := range map[string]variant{
			"G-TSC-RC": vGTSCRC, "G-TSC-SC": vGTSCSC,
			"TC-RC": vTCRC, "TC-SC": vTCSC,
		} {
			r, err := s.run(wl, v)
			if err != nil {
				return nil, err
			}
			e := r.EnergyJ.Total()
			energy[label] = e
			row[label] = e / blE
		}
		out.Norm[wl.Name] = row
		if wl.NeedsCoherence {
			vsTC = append(vsTC, energy["G-TSC-RC"]/energy["TC-RC"])
			vsBL = append(vsBL, energy["G-TSC-RC"]/blE)
		}
	}
	out.GTSCSavingVsTC = 1 - geomean(vsTC)
	out.GTSCSavingVsBL = 1 - geomean(vsBL)
	return out, nil
}

// Print renders the figure.
func (r *Fig16) Print(w io.Writer) {
	fmt.Fprintln(w, "Fig 16: total energy normalized to no-L1 baseline (lower is better)")
	t := newTable(w)
	t.row(append([]string{"Benchmark"}, Fig13Series...)...)
	rows := func(group []string) {
		for _, n := range group {
			cells := []string{n}
			for _, series := range Fig13Series {
				cells = append(cells, fmt.Sprintf("%.2f", r.Norm[n][series]))
			}
			t.row(cells...)
		}
	}
	rows(r.Coherent)
	t.row("--")
	rows(r.NonCoherent)
	t.flush()
	fmt.Fprintf(w, "G-TSC-RC energy saving (coherence set): vs TC-RC %.0f%% (paper ~9-11%%), vs BL %.0f%% (paper ~11%%)\n",
		100*r.GTSCSavingVsTC, 100*r.GTSCSavingVsBL)
}

// Fig17 reproduces Figure 17: absolute L1 cache energy in joules.
type Fig17 struct {
	Coherent    []string
	NonCoherent []string
	// Joules[workload][series] = L1 energy in joules.
	Joules map[string]map[string]float64
	// TCUnderGTSC reports whether TC spends slightly less L1 energy
	// than G-TSC (the paper's observation: G-TSC pays for warp_ts and
	// timestamp updates).
	TCUnderGTSC bool
}

// RunFig17 executes the Fig 17 matrix.
func (s *Session) RunFig17() (*Fig17, error) {
	out := &Fig17{
		Coherent:    names(workload.CoherenceSet()),
		NonCoherent: names(workload.NonCoherenceSet()),
		Joules:      map[string]map[string]float64{},
	}
	if err := s.prewarmGrid(workload.All(), vGTSCRC, vGTSCSC, vTCRC, vTCSC); err != nil {
		return nil, err
	}
	var gtscSum, tcSum float64
	for _, wl := range workload.All() {
		row := map[string]float64{}
		for label, v := range map[string]variant{
			"G-TSC-RC": vGTSCRC, "G-TSC-SC": vGTSCSC,
			"TC-RC": vTCRC, "TC-SC": vTCSC,
		} {
			r, err := s.run(wl, v)
			if err != nil {
				return nil, err
			}
			row[label] = r.EnergyJ.L1
		}
		out.Joules[wl.Name] = row
		gtscSum += row["G-TSC-RC"]
		tcSum += row["TC-RC"]
	}
	out.TCUnderGTSC = tcSum < gtscSum
	return out, nil
}

// Print renders the figure.
func (r *Fig17) Print(w io.Writer) {
	fmt.Fprintln(w, "Fig 17: L1 cache energy (joules)")
	t := newTable(w)
	t.row(append([]string{"Benchmark"}, Fig13Series...)...)
	rows := func(group []string) {
		for _, n := range group {
			cells := []string{n}
			for _, series := range Fig13Series {
				cells = append(cells, fmt.Sprintf("%.3g", r.Joules[n][series]))
			}
			t.row(cells...)
		}
	}
	rows(r.Coherent)
	t.row("--")
	rows(r.NonCoherent)
	t.flush()
	fmt.Fprintf(w, "TC L1 energy slightly below G-TSC (paper's observation): %v\n", r.TCUnderGTSC)
}

// ExpiryMiss reproduces the §VI-E characterization: misses caused by
// lease expiration drop under G-TSC because logical time rolls slower
// than physical time (paper: ~48% fewer). An expired G-TSC access
// whose data is still current is answered by a dataless renewal and
// the block stays live in the L1 — only expirations forcing a data
// refetch are coherence misses in the sense TC suffers them (TC
// self-invalidates the whole block either way and always refetches).
type ExpiryMiss struct {
	Workloads []string
	// GTSCExpired counts all lease-expired accesses; GTSCRefetch the
	// subset needing data; TC's self-invalidations all need data.
	GTSCExpired map[string]uint64
	GTSCRefetch map[string]uint64
	TC          map[string]uint64
	// Reduction is the geomean cut in data-refetching expiry misses
	// vs TC.
	Reduction float64
}

// RunExpiryMiss executes the comparison over the coherence set.
func (s *Session) RunExpiryMiss() (*ExpiryMiss, error) {
	out := &ExpiryMiss{
		Workloads:   names(workload.CoherenceSet()),
		GTSCExpired: map[string]uint64{},
		GTSCRefetch: map[string]uint64{},
		TC:          map[string]uint64{},
	}
	if err := s.prewarmGrid(workload.CoherenceSet(), vGTSCRC, vTCRC); err != nil {
		return nil, err
	}
	var ratios []float64
	for _, wl := range workload.CoherenceSet() {
		g, err := s.run(wl, vGTSCRC)
		if err != nil {
			return nil, err
		}
		tc, err := s.run(wl, vTCRC)
		if err != nil {
			return nil, err
		}
		out.GTSCExpired[wl.Name] = g.L1.MissExpired
		refetch := uint64(0)
		if g.L1.MissExpired > g.L1.RenewalHits {
			refetch = g.L1.MissExpired - g.L1.RenewalHits
		}
		out.GTSCRefetch[wl.Name] = refetch
		out.TC[wl.Name] = tc.L1.MissExpired
		ratios = append(ratios, float64(refetch+1)/float64(tc.L1.MissExpired+1))
	}
	out.Reduction = 1 - geomean(ratios)
	return out, nil
}

// Print renders the comparison.
func (r *ExpiryMiss) Print(w io.Writer) {
	fmt.Fprintln(w, "SecVI-E: L1 misses due to lease expiration (RC)")
	t := newTable(w)
	t.row("Benchmark", "G-TSC expired", "G-TSC refetched", "TC self-invalidated")
	for _, n := range r.Workloads {
		t.row(n, fmt.Sprintf("%d", r.GTSCExpired[n]),
			fmt.Sprintf("%d", r.GTSCRefetch[n]), fmt.Sprintf("%d", r.TC[n]))
	}
	t.flush()
	fmt.Fprintf(w, "expiry-miss (data refetch) reduction vs TC: %.0f%% (paper ~48%%)\n", 100*r.Reduction)
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func absf(a float64) float64 {
	if a < 0 {
		return -a
	}
	return a
}
