package experiments

import (
	"fmt"
	"io"

	"github.com/gtsc-sim/gtsc/internal/dram"
	"github.com/gtsc-sim/gtsc/internal/gpu"
	"github.com/gtsc-sim/gtsc/internal/memsys"
	"github.com/gtsc-sim/gtsc/internal/noc"
	"github.com/gtsc-sim/gtsc/internal/sim"
	"github.com/gtsc-sim/gtsc/internal/stats"
	"github.com/gtsc-sim/gtsc/internal/workload"
)

// The experiments in this file go beyond the paper's evaluation:
// extensions the paper names but does not measure (TSO, lease
// policies) and design-space sweeps DESIGN.md calls out (scalability,
// scheduler choice, microbenchmark characterization).

// AblationLease compares G-TSC's fixed lease against the adaptive
// per-block policy (Tardis-2.0-style prediction): read-mostly blocks
// earn long leases and dodge the renewals that warp-timestamp advances
// cause.
type AblationLease struct {
	Workloads []string
	// Renewal requests and NoC flits under each policy; cycles too.
	FixedRenewals    map[string]uint64
	AdaptiveRenewals map[string]uint64
	FixedFlits       map[string]uint64
	AdaptiveFlits    map[string]uint64
	FixedCycles      map[string]uint64
	AdaptiveCycles   map[string]uint64
	// RenewalCut is the geomean reduction in renewal requests.
	RenewalCut float64
}

// RunAblationLease executes the comparison over the coherence set
// under G-TSC-RC.
func (s *Session) RunAblationLease() (*AblationLease, error) {
	out := &AblationLease{
		Workloads:        names(workload.CoherenceSet()),
		FixedRenewals:    map[string]uint64{},
		AdaptiveRenewals: map[string]uint64{},
		FixedFlits:       map[string]uint64{},
		AdaptiveFlits:    map[string]uint64{},
		FixedCycles:      map[string]uint64{},
		AdaptiveCycles:   map[string]uint64{},
	}
	if err := s.prewarmGrid(workload.CoherenceSet(), vGTSCRC,
		variant{proto: memsys.GTSC, cons: gpu.RC, adaptive: true}); err != nil {
		return nil, err
	}
	var ratios []float64
	for _, wl := range workload.CoherenceSet() {
		fixed, err := s.run(wl, vGTSCRC)
		if err != nil {
			return nil, err
		}
		adaptive, err := s.run(wl, variant{proto: memsys.GTSC, cons: gpu.RC, adaptive: true})
		if err != nil {
			return nil, err
		}
		out.FixedRenewals[wl.Name] = fixed.L1.Renewals
		out.AdaptiveRenewals[wl.Name] = adaptive.L1.Renewals
		out.FixedFlits[wl.Name] = fixed.NoC.TotalFlits()
		out.AdaptiveFlits[wl.Name] = adaptive.NoC.TotalFlits()
		out.FixedCycles[wl.Name] = fixed.Cycles
		out.AdaptiveCycles[wl.Name] = adaptive.Cycles
		ratios = append(ratios, float64(adaptive.L1.Renewals+1)/float64(fixed.L1.Renewals+1))
	}
	out.RenewalCut = 1 - geomean(ratios)
	return out, nil
}

// Print renders the ablation.
func (r *AblationLease) Print(w io.Writer) {
	fmt.Fprintln(w, "Extension: fixed vs adaptive (Tardis-2.0-style) lease policy, G-TSC-RC")
	t := newTable(w)
	t.row("Benchmark", "renewals fixed", "renewals adaptive", "flits fixed", "flits adaptive", "cycles fixed", "cycles adaptive")
	for _, n := range r.Workloads {
		t.row(n,
			fmt.Sprintf("%d", r.FixedRenewals[n]),
			fmt.Sprintf("%d", r.AdaptiveRenewals[n]),
			fmt.Sprintf("%d", r.FixedFlits[n]),
			fmt.Sprintf("%d", r.AdaptiveFlits[n]),
			fmt.Sprintf("%d", r.FixedCycles[n]),
			fmt.Sprintf("%d", r.AdaptiveCycles[n]))
	}
	t.flush()
	fmt.Fprintf(w, "geomean renewal-request reduction from adaptive leases: %.0f%%\n", 100*r.RenewalCut)
}

// ConsistencySpectrum places TSO between SC and RC for G-TSC — the
// intermediate point the paper mentions (§II-B) but does not measure.
type ConsistencySpectrum struct {
	Workloads []string
	// Norm[workload][model] = cycles(SC) / cycles(model): speedup over
	// SC (SC row is 1.0 by construction).
	Norm map[string]map[string]float64
	// Geomean speedups over SC.
	TSOoverSC float64
	RCoverSC  float64
}

// RunConsistencySpectrum executes the comparison over the coherence
// set under G-TSC.
func (s *Session) RunConsistencySpectrum() (*ConsistencySpectrum, error) {
	out := &ConsistencySpectrum{
		Workloads: names(workload.CoherenceSet()),
		Norm:      map[string]map[string]float64{},
	}
	if err := s.prewarmGrid(workload.CoherenceSet(), vGTSCSC, vGTSCRC,
		variant{proto: memsys.GTSC, cons: gpu.TSO}); err != nil {
		return nil, err
	}
	var tso, rc []float64
	for _, wl := range workload.CoherenceSet() {
		sc, err := s.run(wl, vGTSCSC)
		if err != nil {
			return nil, err
		}
		tsoRun, err := s.run(wl, variant{proto: memsys.GTSC, cons: gpu.TSO})
		if err != nil {
			return nil, err
		}
		rcRun, err := s.run(wl, vGTSCRC)
		if err != nil {
			return nil, err
		}
		row := map[string]float64{
			"SC":  1.0,
			"TSO": float64(sc.Cycles) / float64(tsoRun.Cycles),
			"RC":  float64(sc.Cycles) / float64(rcRun.Cycles),
		}
		out.Norm[wl.Name] = row
		tso = append(tso, row["TSO"])
		rc = append(rc, row["RC"])
	}
	out.TSOoverSC = geomean(tso)
	out.RCoverSC = geomean(rc)
	return out, nil
}

// Print renders the spectrum.
func (r *ConsistencySpectrum) Print(w io.Writer) {
	fmt.Fprintln(w, "Extension: consistency spectrum under G-TSC (speedup over SC)")
	t := newTable(w)
	t.row("Benchmark", "SC", "TSO", "RC")
	for _, n := range r.Workloads {
		t.row(n,
			fmt.Sprintf("%.2f", r.Norm[n]["SC"]),
			fmt.Sprintf("%.2f", r.Norm[n]["TSO"]),
			fmt.Sprintf("%.2f", r.Norm[n]["RC"]))
	}
	t.flush()
	fmt.Fprintf(w, "geomean: TSO %.2fx over SC, RC %.2fx over SC (TSO sits between, as expected)\n",
		r.TSOoverSC, r.RCoverSC)
}

// Scalability sweeps the SM count and reports how the G-TSC/TC gap
// evolves — the motivation of the paper's introduction (coherence
// traffic grows with thread count).
type Scalability struct {
	SMCounts []int
	// Speedup[sms] = geomean over the coherence set of
	// cycles(TC-RC)/cycles(G-TSC-RC) at that machine size.
	Speedup map[int]float64
	// GTSCFlitsPerSM and TCFlitsPerSM report how per-SM coherence
	// traffic scales.
	GTSCFlits map[int]uint64
	TCFlits   map[int]uint64
}

// RunScalability executes the sweep. Machine sizes use half as many
// banks as SMs (the paper's 16/8 ratio).
func (s *Session) RunScalability() (*Scalability, error) {
	out := &Scalability{
		SMCounts:  []int{4, 8, 16, 32},
		Speedup:   map[int]float64{},
		GTSCFlits: map[int]uint64{},
		TCFlits:   map[int]uint64{},
	}
	var jobs []func() error
	for _, sms := range out.SMCounts {
		for _, wl := range workload.CoherenceSet() {
			sms, wl := sms, wl
			jobs = append(jobs,
				func() error { _, err := s.runAt(wl, vGTSCRC, sms); return err },
				func() error { _, err := s.runAt(wl, vTCRC, sms); return err })
		}
	}
	if err := s.parallel(jobs); err != nil {
		return nil, err
	}
	for _, sms := range out.SMCounts {
		var ratios []float64
		var gFlits, tFlits uint64
		for _, wl := range workload.CoherenceSet() {
			g, err := s.runAt(wl, vGTSCRC, sms)
			if err != nil {
				return nil, err
			}
			tc, err := s.runAt(wl, vTCRC, sms)
			if err != nil {
				return nil, err
			}
			ratios = append(ratios, float64(tc.Cycles)/float64(g.Cycles))
			gFlits += g.NoC.TotalFlits()
			tFlits += tc.NoC.TotalFlits()
		}
		out.Speedup[sms] = geomean(ratios)
		out.GTSCFlits[sms] = gFlits
		out.TCFlits[sms] = tFlits
	}
	return out, nil
}

// runAt runs a variant on a machine with the given SM count (banks =
// SMs/2, min 2), growing the workload with the machine so every size
// is fully occupied. Cached separately from the session's main machine.
func (s *Session) runAt(wl *workload.Workload, v variant, sms int) (*stats.Run, error) {
	return s.do(fmt.Sprintf("%s@%d", s.key(wl.Name, v), sms), func() (*stats.Run, error) {
		cfg := sim.DefaultConfig()
		cfg.Mem.Protocol = v.proto
		cfg.Mem.NumSMs = sms
		cfg.Mem.NumBanks = maxi(sms/2, 2)
		cfg.SM.Consistency = v.cons
		cfg.MaxCycles = s.Cfg.MaxCycles
		cfg.Mem.GTSC.Lease = s.Cfg.GTSCLease
		cfg.Mem.GTSC.TSBits = s.Cfg.GTSCTSBits
		cfg.Mem.TC.Lease = s.Cfg.TCLease
		scale := maxi(s.Cfg.Scale, sms/8)
		run, err := wl.Build(scale).Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("%s at %d SMs: %w", wl.Name, sms, err)
		}
		return run, nil
	})
}

// Print renders the sweep.
func (r *Scalability) Print(w io.Writer) {
	fmt.Fprintln(w, "Extension: G-TSC advantage vs machine size (coherence set, RC)")
	t := newTable(w)
	t.row("SMs", "G-TSC speedup over TC", "G-TSC flits", "TC flits")
	for _, sms := range r.SMCounts {
		t.row(fmt.Sprintf("%d", sms),
			fmt.Sprintf("%.2fx", r.Speedup[sms]),
			fmt.Sprintf("%d", r.GTSCFlits[sms]),
			fmt.Sprintf("%d", r.TCFlits[sms]))
	}
	t.flush()
}

// MicroTable characterizes the protocols on the microbenchmark suite
// (atomics, false sharing, broadcast, streaming, hot-word contention).
type MicroTable struct {
	Micros []string
	// Cycles[micro][protocol label].
	Cycles map[string]map[string]uint64
	// Key stat per micro/protocol: renewals for G-TSC, self-
	// invalidations for TC (rough proxies for coherence work).
	Renewals  map[string]uint64
	SelfInval map[string]uint64
	Atomics   map[string]uint64
}

// RunMicroTable executes the characterization.
func (s *Session) RunMicroTable() (*MicroTable, error) {
	out := &MicroTable{
		Cycles:    map[string]map[string]uint64{},
		Renewals:  map[string]uint64{},
		SelfInval: map[string]uint64{},
		Atomics:   map[string]uint64{},
	}
	var jobs []func() error
	for _, m := range workload.Micro() {
		for _, v := range []variant{vGTSCRC, vTCRC, vBL} {
			m, v := m, v
			jobs = append(jobs, func() error { _, err := s.runMicro(m, v); return err })
		}
	}
	if err := s.parallel(jobs); err != nil {
		return nil, err
	}
	for _, m := range workload.Micro() {
		out.Micros = append(out.Micros, m.Name)
		row := map[string]uint64{}
		for label, v := range map[string]variant{
			"G-TSC-RC": vGTSCRC, "TC-RC": vTCRC, "BL": vBL,
		} {
			run, err := s.runMicro(m, v)
			if err != nil {
				return nil, err
			}
			row[label] = run.Cycles
			switch label {
			case "G-TSC-RC":
				out.Renewals[m.Name] = run.L1.Renewals
				out.Atomics[m.Name] = run.L2.Atomics
			case "TC-RC":
				out.SelfInval[m.Name] = run.L1.SelfInval
			}
		}
		out.Cycles[m.Name] = row
	}
	return out, nil
}

func (s *Session) runMicro(m *workload.Workload, v variant) (*stats.Run, error) {
	return s.do("micro/"+s.key(m.Name, v), func() (*stats.Run, error) {
		cfg := sim.DefaultConfig()
		cfg.Mem.Protocol = v.proto
		cfg.Mem.NumSMs = s.Cfg.NumSMs
		cfg.Mem.NumBanks = s.Cfg.NumBanks
		cfg.SM.Consistency = v.cons
		cfg.MaxCycles = s.Cfg.MaxCycles
		run, err := m.Build(s.Cfg.Scale).Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("micro %s: %w", m.Name, err)
		}
		return run, nil
	})
}

// Print renders the characterization.
func (r *MicroTable) Print(w io.Writer) {
	fmt.Fprintln(w, "Extension: microbenchmark characterization (cycles; G-TSC renewals / TC self-invalidations / atomics)")
	t := newTable(w)
	t.row("Micro", "G-TSC-RC", "TC-RC", "BL", "renewals", "selfinval", "atomics")
	for _, n := range r.Micros {
		t.row(n,
			fmt.Sprintf("%d", r.Cycles[n]["G-TSC-RC"]),
			fmt.Sprintf("%d", r.Cycles[n]["TC-RC"]),
			fmt.Sprintf("%d", r.Cycles[n]["BL"]),
			fmt.Sprintf("%d", r.Renewals[n]),
			fmt.Sprintf("%d", r.SelfInval[n]),
			fmt.Sprintf("%d", r.Atomics[n]))
	}
	t.flush()
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Platform sweeps substrate fidelity knobs: crossbar vs 2D mesh NoC,
// flat vs banked row-buffer DRAM — checking the protocol conclusions
// are not artifacts of the idealized substrate.
type Platform struct {
	Configs []string
	// Speedup[config] = geomean cycles(TC-RC)/cycles(G-TSC-RC) on the
	// coherence set under that substrate.
	Speedup map[string]float64
	// Cycles[config] = total G-TSC-RC cycles (substrate cost itself).
	Cycles map[string]uint64
}

// RunPlatform executes the sweep.
func (s *Session) RunPlatform() (*Platform, error) {
	out := &Platform{
		Configs: []string{"xbar+flat", "mesh+flat", "xbar+banked", "mesh+banked"},
		Speedup: map[string]float64{},
		Cycles:  map[string]uint64{},
	}
	var jobs []func() error
	for _, pc := range out.Configs {
		mesh := pc == "mesh+flat" || pc == "mesh+banked"
		banked := pc == "xbar+banked" || pc == "mesh+banked"
		for _, wl := range workload.CoherenceSet() {
			wl, mesh, banked := wl, mesh, banked
			jobs = append(jobs,
				func() error { _, err := s.runPlatform(wl, vGTSCRC, mesh, banked); return err },
				func() error { _, err := s.runPlatform(wl, vTCRC, mesh, banked); return err })
		}
	}
	if err := s.parallel(jobs); err != nil {
		return nil, err
	}
	for _, pc := range out.Configs {
		mesh := pc == "mesh+flat" || pc == "mesh+banked"
		banked := pc == "xbar+banked" || pc == "mesh+banked"
		var ratios []float64
		var cyc uint64
		for _, wl := range workload.CoherenceSet() {
			g, err := s.runPlatform(wl, vGTSCRC, mesh, banked)
			if err != nil {
				return nil, err
			}
			tc, err := s.runPlatform(wl, vTCRC, mesh, banked)
			if err != nil {
				return nil, err
			}
			ratios = append(ratios, float64(tc.Cycles)/float64(g.Cycles))
			cyc += g.Cycles
		}
		out.Speedup[pc] = geomean(ratios)
		out.Cycles[pc] = cyc
	}
	return out, nil
}

func (s *Session) runPlatform(wl *workload.Workload, v variant, mesh, banked bool) (*stats.Run, error) {
	return s.do(fmt.Sprintf("%s/plat/%t/%t", s.key(wl.Name, v), mesh, banked), func() (*stats.Run, error) {
		cfg := sim.DefaultConfig()
		cfg.Mem.Protocol = v.proto
		cfg.Mem.NumSMs = s.Cfg.NumSMs
		cfg.Mem.NumBanks = s.Cfg.NumBanks
		cfg.SM.Consistency = v.cons
		cfg.MaxCycles = s.Cfg.MaxCycles
		cfg.Mem.GTSC.Lease = s.Cfg.GTSCLease
		cfg.Mem.GTSC.TSBits = s.Cfg.GTSCTSBits
		cfg.Mem.TC.Lease = s.Cfg.TCLease
		if mesh {
			cfg.Mem.NoC = noc.DefaultMeshConfig()
		}
		if banked {
			cfg.Mem.DRAM = dram.DefaultBankedConfig()
		}
		run, err := wl.Build(s.Cfg.Scale).Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("%s on %t/%t: %w", wl.Name, mesh, banked, err)
		}
		return run, nil
	})
}

// Print renders the sweep.
func (r *Platform) Print(w io.Writer) {
	fmt.Fprintln(w, "Extension: substrate sweep — NoC topology x DRAM model (coherence set, RC)")
	t := newTable(w)
	t.row("Substrate", "G-TSC speedup over TC", "G-TSC total cycles")
	for _, pc := range r.Configs {
		t.row(pc, fmt.Sprintf("%.2fx", r.Speedup[pc]), fmt.Sprintf("%d", r.Cycles[pc]))
	}
	t.flush()
}

// CacheSweep varies the L1 geometry (size and MSHR count), checking
// how sensitive G-TSC's advantage is to private-cache provisioning.
type CacheSweep struct {
	Points []string
	// Speedup[point] = geomean cycles(TC-RC)/cycles(G-TSC-RC).
	Speedup map[string]float64
	// HitRate[point] = aggregate G-TSC L1 load hit rate.
	HitRate map[string]float64
}

// RunCacheSweep executes the sweep over the coherence set.
func (s *Session) RunCacheSweep() (*CacheSweep, error) {
	points := []struct {
		name  string
		sets  int
		mshrs int
	}{
		{"8KB/16mshr", 16, 16},
		{"16KB/32mshr", 32, 32}, // the paper's configuration
		{"32KB/32mshr", 64, 32},
		{"64KB/64mshr", 128, 64},
	}
	out := &CacheSweep{Speedup: map[string]float64{}, HitRate: map[string]float64{}}
	var jobs []func() error
	for _, pt := range points {
		for _, wl := range workload.CoherenceSet() {
			pt, wl := pt, wl
			jobs = append(jobs,
				func() error { _, err := s.runCache(wl, vGTSCRC, pt.sets, pt.mshrs); return err },
				func() error { _, err := s.runCache(wl, vTCRC, pt.sets, pt.mshrs); return err })
		}
	}
	if err := s.parallel(jobs); err != nil {
		return nil, err
	}
	for _, pt := range points {
		out.Points = append(out.Points, pt.name)
		var ratios []float64
		var hits, loads uint64
		for _, wl := range workload.CoherenceSet() {
			g, err := s.runCache(wl, vGTSCRC, pt.sets, pt.mshrs)
			if err != nil {
				return nil, err
			}
			tc, err := s.runCache(wl, vTCRC, pt.sets, pt.mshrs)
			if err != nil {
				return nil, err
			}
			ratios = append(ratios, float64(tc.Cycles)/float64(g.Cycles))
			hits += g.L1.Hits
			loads += g.L1.Loads
		}
		out.Speedup[pt.name] = geomean(ratios)
		out.HitRate[pt.name] = float64(hits) / float64(loads)
	}
	return out, nil
}

func (s *Session) runCache(wl *workload.Workload, v variant, sets, mshrs int) (*stats.Run, error) {
	return s.do(fmt.Sprintf("%s/cache/%d/%d", s.key(wl.Name, v), sets, mshrs), func() (*stats.Run, error) {
		cfg := sim.DefaultConfig()
		cfg.Mem.Protocol = v.proto
		cfg.Mem.NumSMs = s.Cfg.NumSMs
		cfg.Mem.NumBanks = s.Cfg.NumBanks
		cfg.Mem.L1Sets = sets
		cfg.Mem.L1MSHRs = mshrs
		cfg.SM.Consistency = v.cons
		cfg.MaxCycles = s.Cfg.MaxCycles
		cfg.Mem.GTSC.Lease = s.Cfg.GTSCLease
		cfg.Mem.GTSC.TSBits = s.Cfg.GTSCTSBits
		cfg.Mem.TC.Lease = s.Cfg.TCLease
		run, err := wl.Build(s.Cfg.Scale).Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("%s at %d sets: %w", wl.Name, sets, err)
		}
		return run, nil
	})
}

// Print renders the sweep.
func (r *CacheSweep) Print(w io.Writer) {
	fmt.Fprintln(w, "Extension: L1 geometry sweep (coherence set, RC)")
	t := newTable(w)
	t.row("L1 config", "G-TSC speedup over TC", "G-TSC L1 hit rate")
	for _, pt := range r.Points {
		t.row(pt, fmt.Sprintf("%.2fx", r.Speedup[pt]), fmt.Sprintf("%.0f%%", 100*r.HitRate[pt]))
	}
	t.flush()
}

// DirectoryCompare quantifies §II-C: conventional invalidation-based
// directory coherence versus G-TSC on the same machine — the
// invalidation/recall traffic, the write-latency cost of collecting
// acknowledgments, and the directory storage that grows with SM count
// while G-TSC's timestamps do not.
type DirectoryCompare struct {
	Workloads []string
	// Cycles and flits per workload for each protocol.
	DirCycles  map[string]uint64
	GTSCCycles map[string]uint64
	DirFlits   map[string]uint64
	GTSCFlits  map[string]uint64
	// Directory-only event counts.
	Invalidations map[string]uint64
	Recalls       map[string]uint64
	Writebacks    map[string]uint64
	// GTSCSpeedup is the geomean cycles(DIR)/cycles(G-TSC) over the
	// coherence set.
	GTSCSpeedup float64
	// Storage overhead per L2 line, in bits.
	DirBitsPerLine  int
	GTSCBitsPerLine int
	// Scaling: how the directory's costs grow with the SM count.
	SMCounts  []int
	SpeedupAt map[int]float64 // geomean cycles(DIR)/cycles(G-TSC)
	InvsAt    map[int]uint64  // total invalidations
	DirBitsAt map[int]int     // directory bits per L2 line
}

// RunDirectoryCompare executes the comparison (RC both sides).
func (s *Session) RunDirectoryCompare() (*DirectoryCompare, error) {
	out := &DirectoryCompare{
		Workloads:     names(workload.CoherenceSet()),
		DirCycles:     map[string]uint64{},
		GTSCCycles:    map[string]uint64{},
		DirFlits:      map[string]uint64{},
		GTSCFlits:     map[string]uint64{},
		Invalidations: map[string]uint64{},
		Recalls:       map[string]uint64{},
		Writebacks:    map[string]uint64{},
	}
	vDIR := variant{proto: memsys.DIR, cons: gpu.RC}
	smCounts := []int{4, 8, 16, 32}
	jobs := s.gridJobs(workload.CoherenceSet(), vDIR, vGTSCRC)
	for _, sms := range smCounts {
		for _, wl := range workload.CoherenceSet() {
			sms, wl := sms, wl
			jobs = append(jobs,
				func() error { _, err := s.runAt(wl, vDIR, sms); return err },
				func() error { _, err := s.runAt(wl, vGTSCRC, sms); return err })
		}
	}
	if err := s.parallel(jobs); err != nil {
		return nil, err
	}
	var ratios []float64
	for _, wl := range workload.CoherenceSet() {
		d, err := s.run(wl, variant{proto: memsys.DIR, cons: gpu.RC})
		if err != nil {
			return nil, err
		}
		g, err := s.run(wl, vGTSCRC)
		if err != nil {
			return nil, err
		}
		out.DirCycles[wl.Name] = d.Cycles
		out.GTSCCycles[wl.Name] = g.Cycles
		out.DirFlits[wl.Name] = d.NoC.TotalFlits()
		out.GTSCFlits[wl.Name] = g.NoC.TotalFlits()
		out.Invalidations[wl.Name] = d.L2.Invalidations
		out.Recalls[wl.Name] = d.L2.Recalls
		out.Writebacks[wl.Name] = d.L1.Writebacks
		ratios = append(ratios, float64(d.Cycles)/float64(g.Cycles))
	}
	out.GTSCSpeedup = geomean(ratios)
	// Full-map directory: one sharer bit per SM plus an owner id and a
	// valid bit. G-TSC: two 16-bit timestamps per line, independent of
	// the SM count.
	dirBits := func(sms int) int {
		ownerBits := 1
		for 1<<ownerBits < sms {
			ownerBits++
		}
		return sms + ownerBits + 1
	}
	out.DirBitsPerLine = dirBits(s.Cfg.NumSMs)
	out.GTSCBitsPerLine = 32

	// Scaling sweep: the paper's argument is that invalidation costs
	// grow with the thread count; measure it.
	out.SMCounts = smCounts
	out.SpeedupAt = map[int]float64{}
	out.InvsAt = map[int]uint64{}
	out.DirBitsAt = map[int]int{}
	for _, sms := range out.SMCounts {
		var sweep []float64
		var invs uint64
		for _, wl := range workload.CoherenceSet() {
			d, err := s.runAt(wl, variant{proto: memsys.DIR, cons: gpu.RC}, sms)
			if err != nil {
				return nil, err
			}
			g, err := s.runAt(wl, vGTSCRC, sms)
			if err != nil {
				return nil, err
			}
			sweep = append(sweep, float64(d.Cycles)/float64(g.Cycles))
			invs += d.L2.Invalidations
		}
		out.SpeedupAt[sms] = geomean(sweep)
		out.InvsAt[sms] = invs
		out.DirBitsAt[sms] = dirBits(sms)
	}
	return out, nil
}

// Print renders the comparison.
func (r *DirectoryCompare) Print(w io.Writer) {
	fmt.Fprintln(w, "SecII-C characterization: invalidation-based directory (MESI-dir) vs G-TSC, RC")
	t := newTable(w)
	t.row("Benchmark", "dir cycles", "gtsc cycles", "dir flits", "gtsc flits", "invs", "recalls", "writebacks")
	for _, n := range r.Workloads {
		t.row(n,
			fmt.Sprintf("%d", r.DirCycles[n]),
			fmt.Sprintf("%d", r.GTSCCycles[n]),
			fmt.Sprintf("%d", r.DirFlits[n]),
			fmt.Sprintf("%d", r.GTSCFlits[n]),
			fmt.Sprintf("%d", r.Invalidations[n]),
			fmt.Sprintf("%d", r.Recalls[n]),
			fmt.Sprintf("%d", r.Writebacks[n]))
	}
	t.flush()
	fmt.Fprintf(w, "G-TSC speedup over the directory: %.2fx geomean (coherence set)\n", r.GTSCSpeedup)
	fmt.Fprintf(w, "directory storage: %d bits/L2 line (grows with SM count) vs G-TSC %d bits/line (constant)\n",
		r.DirBitsPerLine, r.GTSCBitsPerLine)
	fmt.Fprintln(w, "scaling with SM count:")
	t2 := newTable(w)
	t2.row("SMs", "G-TSC speedup over dir", "invalidations", "dir bits/line")
	for _, sms := range r.SMCounts {
		t2.row(fmt.Sprintf("%d", sms),
			fmt.Sprintf("%.2fx", r.SpeedupAt[sms]),
			fmt.Sprintf("%d", r.InvsAt[sms]),
			fmt.Sprintf("%d", r.DirBitsAt[sms]))
	}
	t2.flush()
}
