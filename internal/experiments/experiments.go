// Package experiments regenerates every table and figure of the
// paper's evaluation (Section VI) over the simulator: Table II and
// Figs 12–17, the §VI-E expiry-miss characterization, and the §V
// ablations. Each driver returns structured results and can print the
// same rows/series the paper reports.
//
// Runs are cached per (workload, protocol, consistency, option)
// within a Session, since most figures share the same underlying
// simulations.
package experiments

import (
	"fmt"
	"io"
	"math"
	"sort"
	"text/tabwriter"

	"github.com/gtsc-sim/gtsc/internal/gpu"
	"github.com/gtsc-sim/gtsc/internal/memsys"
	"github.com/gtsc-sim/gtsc/internal/sim"
	"github.com/gtsc-sim/gtsc/internal/stats"
	"github.com/gtsc-sim/gtsc/internal/workload"
)

// Config parameterizes an experiment session.
type Config struct {
	// Scale is the workload scale factor (1 = test size; the default
	// experiment scale is 2).
	Scale int
	// NumSMs/NumBanks describe the machine (paper: 16 and 8).
	NumSMs   int
	NumBanks int
	// GTSCLease is G-TSC's logical lease (paper default 10).
	GTSCLease uint64
	// TCLease is TC's physical lease in cycles (default 400).
	TCLease uint64
	// MaxCycles guards against non-convergence.
	MaxCycles uint64
}

// DefaultConfig returns the paper-scale machine at scale 2.
func DefaultConfig() Config {
	return Config{Scale: 2, NumSMs: 16, NumBanks: 8, GTSCLease: 10, TCLease: 400}
}

func (c *Config) fillDefaults() {
	d := DefaultConfig()
	if c.Scale == 0 {
		c.Scale = d.Scale
	}
	if c.NumSMs == 0 {
		c.NumSMs = d.NumSMs
	}
	if c.NumBanks == 0 {
		c.NumBanks = d.NumBanks
	}
	if c.GTSCLease == 0 {
		c.GTSCLease = d.GTSCLease
	}
	if c.TCLease == 0 {
		c.TCLease = d.TCLease
	}
	if c.MaxCycles == 0 {
		c.MaxCycles = 500_000_000
	}
}

// variant identifies one simulated configuration of a workload.
type variant struct {
	proto      memsys.Protocol
	cons       gpu.Consistency
	lease      uint64 // 0 = session default
	forwardAll bool
	oldCopy    bool
	adaptive   bool // adaptive lease policy (extension)
}

// Canonical variants used across figures.
var (
	vBL     = variant{proto: memsys.BL, cons: gpu.RC}
	vGTSCRC = variant{proto: memsys.GTSC, cons: gpu.RC}
	vGTSCSC = variant{proto: memsys.GTSC, cons: gpu.SC}
	vTCRC   = variant{proto: memsys.TC, cons: gpu.RC}
	vTCSC   = variant{proto: memsys.TC, cons: gpu.SC}
	vL1NC   = variant{proto: memsys.L1NC, cons: gpu.RC}
)

// Session runs and caches simulations for one Config.
type Session struct {
	Cfg   Config
	cache map[string]*stats.Run
}

// NewSession builds a session.
func NewSession(cfg Config) *Session {
	cfg.fillDefaults()
	return &Session{Cfg: cfg, cache: make(map[string]*stats.Run)}
}

func (s *Session) key(wl string, v variant) string {
	return fmt.Sprintf("%s/%d/%d/%d/%t/%t/%t", wl, v.proto, v.cons, v.lease, v.forwardAll, v.oldCopy, v.adaptive)
}

// Run simulates workload wl under variant v (cached).
func (s *Session) run(wl *workload.Workload, v variant) (*stats.Run, error) {
	k := s.key(wl.Name, v)
	if r, ok := s.cache[k]; ok {
		return r, nil
	}
	cfg := sim.DefaultConfig()
	cfg.Mem.Protocol = v.proto
	cfg.Mem.NumSMs = s.Cfg.NumSMs
	cfg.Mem.NumBanks = s.Cfg.NumBanks
	cfg.SM.Consistency = v.cons
	cfg.MaxCycles = s.Cfg.MaxCycles
	cfg.Mem.GTSC.Lease = s.Cfg.GTSCLease
	cfg.Mem.TC.Lease = s.Cfg.TCLease
	if v.lease != 0 {
		cfg.Mem.GTSC.Lease = v.lease
	}
	cfg.Mem.GTSC.ForwardAll = v.forwardAll
	cfg.Mem.GTSC.KeepOldCopy = v.oldCopy
	cfg.Mem.GTSC.AdaptiveLease = v.adaptive

	run, err := wl.Build(s.Cfg.Scale).Run(cfg)
	if err != nil {
		return nil, fmt.Errorf("%s under %s/%s: %w", wl.Name, v.proto, v.cons, err)
	}
	s.cache[k] = run
	return run, nil
}

// geomean returns the geometric mean of xs (1.0 for empty input).
func geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	var s float64
	for _, x := range xs {
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// names extracts workload names in order.
func names(ws []*workload.Workload) []string {
	out := make([]string, len(ws))
	for i, w := range ws {
		out[i] = w.Name
	}
	return out
}

// table is a small helper for aligned text output.
type table struct {
	w *tabwriter.Writer
}

func newTable(out io.Writer) *table {
	return &table{w: tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)}
}

func (t *table) row(cells ...string) {
	for i, c := range cells {
		if i > 0 {
			fmt.Fprint(t.w, "\t")
		}
		fmt.Fprint(t.w, c)
	}
	fmt.Fprintln(t.w)
}

func (t *table) flush() { t.w.Flush() }

// sortedKeys returns map keys in sorted order (deterministic printing).
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
