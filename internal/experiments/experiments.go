// Package experiments regenerates every table and figure of the
// paper's evaluation (Section VI) over the simulator: Table II and
// Figs 12–17, the §VI-E expiry-miss characterization, and the §V
// ablations. Each driver returns structured results and can print the
// same rows/series the paper reports.
//
// Runs are cached per (workload, protocol, consistency, option)
// within a Session, since most figures share the same underlying
// simulations.
package experiments

import (
	"context"
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"text/tabwriter"
	"time"

	"github.com/gtsc-sim/gtsc/internal/checkpoint"
	"github.com/gtsc-sim/gtsc/internal/fault"
	"github.com/gtsc-sim/gtsc/internal/gpu"
	"github.com/gtsc-sim/gtsc/internal/memsys"
	"github.com/gtsc-sim/gtsc/internal/sim"
	"github.com/gtsc-sim/gtsc/internal/stats"
	"github.com/gtsc-sim/gtsc/internal/workload"
)

// Config parameterizes an experiment session.
type Config struct {
	// Scale is the workload scale factor (1 = test size; the default
	// experiment scale is 2).
	Scale int
	// NumSMs/NumBanks describe the machine (paper: 16 and 8).
	NumSMs   int
	NumBanks int
	// GTSCLease is G-TSC's logical lease (paper default 10).
	GTSCLease uint64
	// GTSCTSBits is G-TSC's timestamp counter width in bits (0 = the
	// protocol default, 16). Narrow widths make the §V-D overflow
	// reset a routine event instead of a once-per-billion-cycles one,
	// so sweeps can characterize rollover cost. Result-affecting: part
	// of the journal config signature.
	GTSCTSBits int
	// TCLease is TC's physical lease in cycles (default 400).
	TCLease uint64
	// MaxCycles guards against non-convergence.
	MaxCycles uint64
	// Workers bounds how many simulations the session runs
	// concurrently when a driver fans out its grid (0 = GOMAXPROCS,
	// 1 = fully serial). Every simulation is hermetic — fresh
	// simulator, store, RNG and observer per run — so the results are
	// bit-identical for any worker count; only wall-clock time changes.
	Workers int
	// SimWorkers is the INTRA-simulation parallelism handed to each
	// run (sim.Config.SimWorkers): SMs inside one simulation tick
	// concurrently on a barrier-synchronized pool. Like Workers it is
	// a pure scheduling knob — results and journals are bit-identical
	// at any setting — and it multiplies: a fan-out uses up to
	// Workers x SimWorkers goroutines, so keep the product near
	// GOMAXPROCS (the CLIs clamp it; see EXPERIMENTS.md).
	SimWorkers int
	// Engine selects each run's cycle engine (sim.Config.Engine): the
	// scheduled-wake agenda, the legacy per-cycle loop, or auto. A pure
	// scheduling knob like SimWorkers — results, journals and cache
	// keys are engine-independent — exposed so sweeps can pin a loop
	// for benchmarking or bisection.
	Engine sim.EngineMode
	// Slack is each run's relaxed-synchronization bound in cycles
	// (sim.Config.SlackCycles; 0 = bit-exact execution). Unlike
	// SimWorkers and Engine this is NOT a pure scheduling knob:
	// nonzero slack perturbs cycle counts boundedly (functional
	// results are preserved — see sim/relaxed.go), so it is part of
	// the cache key and of the journal's config signature, and
	// slack-0 results are never served for a slack-N request.
	Slack uint64

	// FaultSeed, when non-zero, runs every simulation under the chaos
	// fault-injection plan with that seed (see internal/fault). Runs
	// stay deterministic per seed; the seed is part of the cache key
	// and of the journal's config signature.
	FaultSeed int64
	// RetryTransient bounds how many times a transient fault-injected
	// failure (a deadlock while a fault plan is active) is retried.
	// Each attempt derives a fresh fault seed — the simulator is
	// deterministic, so retrying the same seed would reproduce the
	// same failure — and waits exponentially longer before rerunning.
	// 0 disables retry.
	RetryTransient int
	// KeepGoing makes a sweep survive individual run failures: a
	// failed (workload, variant) cell no longer aborts the driver;
	// figure/table assembly skips the missing cells and reports them
	// in the result's Missing manifest (see also Session.Missing).
	KeepGoing bool
	// WatchdogWindow overrides each simulation's forward-progress
	// window in simulated cycles (0 = simulator default). The window
	// counts simulated cycles only, so oversubscribed worker pools
	// (Workers > GOMAXPROCS) cannot trip it; TestWatchdogOversubscribed
	// pins that.
	WatchdogWindow uint64
}

// DefaultConfig returns the paper-scale machine at scale 2.
func DefaultConfig() Config {
	return Config{Scale: 2, NumSMs: 16, NumBanks: 8, GTSCLease: 10, TCLease: 400}
}

func (c *Config) fillDefaults() {
	d := DefaultConfig()
	if c.Scale == 0 {
		c.Scale = d.Scale
	}
	if c.NumSMs == 0 {
		c.NumSMs = d.NumSMs
	}
	if c.NumBanks == 0 {
		c.NumBanks = d.NumBanks
	}
	if c.GTSCLease == 0 {
		c.GTSCLease = d.GTSCLease
	}
	if c.TCLease == 0 {
		c.TCLease = d.TCLease
	}
	if c.MaxCycles == 0 {
		c.MaxCycles = 500_000_000
	}
}

// variant identifies one simulated configuration of a workload.
type variant struct {
	proto      memsys.Protocol
	cons       gpu.Consistency
	lease      uint64 // 0 = session default
	forwardAll bool
	oldCopy    bool
	adaptive   bool // adaptive lease policy (extension)
}

// Canonical variants used across figures.
var (
	vBL     = variant{proto: memsys.BL, cons: gpu.RC}
	vGTSCRC = variant{proto: memsys.GTSC, cons: gpu.RC}
	vGTSCSC = variant{proto: memsys.GTSC, cons: gpu.SC}
	vTCRC   = variant{proto: memsys.TC, cons: gpu.RC}
	vTCSC   = variant{proto: memsys.TC, cons: gpu.SC}
	vL1NC   = variant{proto: memsys.L1NC, cons: gpu.RC}
)

// Session runs and caches simulations for one Config. It is safe for
// concurrent use: the result cache is single-flight per cache key, so
// a variant requested by several figures (or several workers) at once
// is simulated exactly once and every caller shares the result.
type Session struct {
	Cfg Config

	mu    sync.Mutex
	cache map[string]*cacheEntry

	// executed counts simulations that actually ran (cache misses) —
	// the observable the cache tests pin down. Journal replay fills
	// the cache WITHOUT touching this counter, which is how the
	// resume tests prove a completed run is never re-executed.
	executed atomic.Uint64

	// ctx, when set via WithContext, cancels in-flight and not-yet-
	// started simulations (graceful shutdown on SIGINT/SIGTERM).
	ctx context.Context

	// journal, when attached, durably records every completed run so
	// a restarted session re-executes only what is missing.
	jmu        sync.Mutex
	journal    *checkpoint.Journal
	journalErr error
	dropped    bool

	// Test seams: sleep backs the retry backoff; runSim executes one
	// simulation. Both default to the real thing in NewSession.
	sleep  func(time.Duration)
	runSim func(ctx context.Context, inst *workload.Instance, cfg sim.Config) (*stats.Run, error)
}

// cacheEntry is one single-flight cache slot: the first requester of a
// key owns it and runs the simulation; later requesters block on done.
type cacheEntry struct {
	done chan struct{}
	run  *stats.Run
	err  error
}

// NewSession builds a session.
func NewSession(cfg Config) *Session {
	cfg.fillDefaults()
	s := &Session{Cfg: cfg, cache: make(map[string]*cacheEntry), sleep: time.Sleep}
	s.runSim = func(ctx context.Context, inst *workload.Instance, cfg sim.Config) (*stats.Run, error) {
		return inst.RunContext(ctx, cfg)
	}
	return s
}

// WithContext makes ctx govern every simulation the session runs:
// canceling it suspends in-flight runs (at the engine's next poll
// point) and prevents not-yet-started ones from running. Completed,
// journaled results are unaffected — a later session resumes from
// them. Returns s for chaining.
func (s *Session) WithContext(ctx context.Context) *Session {
	s.ctx = ctx
	return s
}

// context resolves the session context.
func (s *Session) context() context.Context {
	if s.ctx != nil {
		return s.ctx
	}
	return context.Background()
}

func (s *Session) key(wl string, v variant) string {
	return fmt.Sprintf("%s/%d/%d/%d/%t/%t/%t/%d/%d", wl, v.proto, v.cons, v.lease, v.forwardAll, v.oldCopy, v.adaptive, s.Cfg.FaultSeed, s.Cfg.Slack)
}

// do returns the cached result for key, or runs exec exactly once to
// produce it. Concurrent callers of the same key block until the
// owning call completes (single flight); errors are cached too, so a
// failing variant is not retried by every figure that shares it.
//
// The executing call is panic-isolated: a panic inside exec becomes a
// *diag.WorkerPanicError cached for this key, so one blown-up run
// fails its own cell instead of the whole process. Successful runs
// are appended to the attached journal (if any) before anyone can
// observe the result, so a kill after do returns cannot lose it.
func (s *Session) do(key string, exec func() (*stats.Run, error)) (*stats.Run, error) {
	s.mu.Lock()
	if e, ok := s.cache[key]; ok {
		s.mu.Unlock()
		<-e.done
		return e.run, e.err
	}
	e := &cacheEntry{done: make(chan struct{})}
	s.cache[key] = e
	s.mu.Unlock()
	e.run, e.err = s.protect(key, exec)
	s.executed.Add(1)
	if e.err == nil {
		s.journalRun(key, e.run)
	}
	close(e.done)
	return e.run, e.err
}

// Executed reports how many simulations the session has actually run
// (cache hits excluded).
func (s *Session) Executed() uint64 { return s.executed.Load() }

// CachedRuns snapshots every completed, successful simulation keyed by
// cache key. Used by the determinism tests to compare sessions.
func (s *Session) CachedRuns() map[string]*stats.Run {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]*stats.Run, len(s.cache))
	for k, e := range s.cache {
		select {
		case <-e.done:
			if e.err == nil {
				out[k] = e.run
			}
		default: // still in flight
		}
	}
	return out
}

// workers resolves the session's effective worker count.
func (s *Session) workers() int {
	if s.Cfg.Workers > 0 {
		return s.Cfg.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// parallel fans jobs out across the session's worker pool and waits
// for them all. The first error cancels the remaining (not yet
// started) jobs and is returned — unless the session runs KeepGoing,
// in which case every job is attempted, failures stay cached per-key
// (surfacing in Missing()), and only session-context cancellation
// aborts the fan-out. With Workers=1 the jobs run inline in order.
// Jobs route results through do(), so this is only ever a prewarm:
// drivers re-read the cache serially afterwards, which makes result
// assembly independent of completion order.
func (s *Session) parallel(jobs []func() error) error {
	workers := s.workers()
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers <= 1 {
		for _, job := range jobs {
			if err := s.context().Err(); err != nil {
				return context.Cause(s.context())
			}
			if err := job(); err != nil && !s.Cfg.KeepGoing {
				return err
			}
		}
		return nil
	}
	ctx, cancel := context.WithCancelCause(s.context())
	defer cancel(nil)
	feed := make(chan func() error)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for job := range feed {
				if ctx.Err() != nil {
					continue // drain without running: a job failed
				}
				if err := job(); err != nil && !s.Cfg.KeepGoing {
					cancel(err)
				}
			}
		}()
	}
	for _, job := range jobs {
		if ctx.Err() != nil {
			break
		}
		feed <- job
	}
	close(feed)
	wg.Wait()
	return context.Cause(ctx)
}

// gridJobs builds one prewarm job per (workload, variant) pair.
func (s *Session) gridJobs(wls []*workload.Workload, vs ...variant) []func() error {
	jobs := make([]func() error, 0, len(wls)*len(vs))
	for _, wl := range wls {
		for _, v := range vs {
			wl, v := wl, v
			jobs = append(jobs, func() error { _, err := s.run(wl, v); return err })
		}
	}
	return jobs
}

// prewarmGrid simulates every (workload, variant) pair across the
// worker pool so the driver's serial assembly loop below it only takes
// cache hits.
func (s *Session) prewarmGrid(wls []*workload.Workload, vs ...variant) error {
	return s.parallel(s.gridJobs(wls, vs...))
}

// run simulates workload wl under variant v (cached, single-flight).
// Transient fault-injected failures are retried up to
// Cfg.RetryTransient times with exponential backoff; each attempt
// derives a fresh fault seed, because the deterministic engine would
// otherwise reproduce the identical failure.
func (s *Session) run(wl *workload.Workload, v variant) (*stats.Run, error) {
	return s.do(s.key(wl.Name, v), func() (*stats.Run, error) {
		var lastErr error
		for attempt := 0; attempt <= s.Cfg.RetryTransient; attempt++ {
			if attempt > 0 {
				s.sleep(RetryBackoff(attempt))
			}
			run, err := s.runSim(s.context(), wl.Build(s.Cfg.Scale), s.simConfig(v, attempt))
			if err == nil {
				return run, nil
			}
			lastErr = fmt.Errorf("%s under %s/%s (attempt %d): %w", wl.Name, v.proto, v.cons, attempt+1, err)
			if !s.transient(err) {
				break
			}
		}
		return nil, lastErr
	})
}

// simConfig assembles the simulator configuration for one attempt of
// one variant. The attempt index only varies the derived fault seed;
// with fault injection off every attempt is identical (and there is
// only ever one).
func (s *Session) simConfig(v variant, attempt int) sim.Config {
	cfg := sim.DefaultConfig()
	cfg.Mem.Protocol = v.proto
	cfg.Mem.NumSMs = s.Cfg.NumSMs
	cfg.Mem.NumBanks = s.Cfg.NumBanks
	cfg.SM.Consistency = v.cons
	cfg.MaxCycles = s.Cfg.MaxCycles
	cfg.WatchdogWindow = s.Cfg.WatchdogWindow
	cfg.SimWorkers = s.Cfg.SimWorkers
	cfg.Engine = s.Cfg.Engine
	cfg.SlackCycles = s.Cfg.Slack
	cfg.Mem.GTSC.Lease = s.Cfg.GTSCLease
	cfg.Mem.GTSC.TSBits = s.Cfg.GTSCTSBits
	cfg.Mem.TC.Lease = s.Cfg.TCLease
	if v.lease != 0 {
		cfg.Mem.GTSC.Lease = v.lease
	}
	cfg.Mem.GTSC.ForwardAll = v.forwardAll
	cfg.Mem.GTSC.KeepOldCopy = v.oldCopy
	cfg.Mem.GTSC.AdaptiveLease = v.adaptive
	if s.Cfg.FaultSeed != 0 {
		cfg.Mem.Fault = fault.Chaos(DeriveFaultSeed(s.Cfg.FaultSeed, attempt))
	}
	return cfg
}

// geomean returns the geometric mean of xs (1.0 for empty input).
func geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	var s float64
	for _, x := range xs {
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// names extracts workload names in order.
func names(ws []*workload.Workload) []string {
	out := make([]string, len(ws))
	for i, w := range ws {
		out[i] = w.Name
	}
	return out
}

// table is a small helper for aligned text output.
type table struct {
	w *tabwriter.Writer
}

func newTable(out io.Writer) *table {
	return &table{w: tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)}
}

func (t *table) row(cells ...string) {
	for i, c := range cells {
		if i > 0 {
			fmt.Fprint(t.w, "\t")
		}
		fmt.Fprint(t.w, c)
	}
	fmt.Fprintln(t.w)
}

func (t *table) flush() { t.w.Flush() }

// sortedKeys returns map keys in sorted order (deterministic printing).
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
