package experiments

import (
	"encoding/json"
	"os"
	"reflect"
	"runtime"
	"sort"
	"strings"
	"time"

	"github.com/gtsc-sim/gtsc/internal/memsys"
	"github.com/gtsc-sim/gtsc/internal/sim"
	"github.com/gtsc-sim/gtsc/internal/stats"
	"github.com/gtsc-sim/gtsc/internal/workload"
)

// BenchSim is the reproducible performance snapshot `make bench-sim`
// emits as BENCH_sim.json, tracking the perf trajectory of the
// simulator across PRs: the single-simulation cycle-loop cost and the
// Fig-12 grid wall time serial vs parallel.
type BenchSim struct {
	// Host context: parallel speedup is bounded by available CPUs.
	GOMAXPROCS int `json:"gomaxprocs"`
	NumCPU     int `json:"numcpu"`
	Workers    int `json:"workers"`

	// Single-simulation cycle-loop cost (BH under G-TSC/RC on the
	// benchmark machine), averaged over Iterations runs, at
	// SimWorkers=1 under the scheduled-wake event engine (the default)
	// and at SimWorkers=N (the barrier-synchronized parallel tick). The
	// engine breakdown shows where simulated cycles went: executed vs
	// fast-forwarded, run phase vs drain phase, and how many dispatches
	// the agenda actually performed.
	SingleSim struct {
		Workload      string  `json:"workload"`
		Protocol      string  `json:"protocol"`
		Engine        string  `json:"engine"`
		Iterations    int     `json:"iterations"`
		SimCycles     uint64  `json:"sim_cycles_per_run"`
		WallNsPerRun  int64   `json:"wall_ns_per_run"`
		NsPerSimCycle float64 `json:"ns_per_sim_cycle"`
		AllocsPerRun  uint64  `json:"allocs_per_run"`
		BytesPerRun   uint64  `json:"bytes_per_run"`

		// Engine cycle accounting (identical at any SimWorkers).
		RunCyclesExecuted   uint64 `json:"run_cycles_executed"`
		RunCyclesSkipped    uint64 `json:"run_cycles_skipped"`
		DrainCyclesExecuted uint64 `json:"drain_cycles_executed"`
		DrainCyclesSkipped  uint64 `json:"drain_cycles_skipped"`
		SkippedCycles       uint64 `json:"skipped_cycles_total"`

		// Scheduled-wake dispatch accounting: how much of the machine
		// the agenda actually evaluated. Dispatches = one hierarchy
		// dispatch per executed event cycle + one per awake-SM tick;
		// SMSleepCycles counts SM-cycles bulk-applied while an SM slept
		// through executed machine cycles (the per-SM analogue of the
		// skip counters above).
		SkipWindows   uint64  `json:"skip_windows"`
		MeanSkipWidth float64 `json:"mean_skip_width"`
		Dispatches    uint64  `json:"event_dispatches"`
		EventCycles   uint64  `json:"event_cycles"`
		SMTicks       uint64  `json:"sm_ticks"`
		SMSleepCycles uint64  `json:"sm_sleep_cycles"`
		SMWakes       uint64  `json:"sm_wakes"`

		// Per-component hierarchy dispatch: of the EventCycles executed,
		// how many per-cycle component Ticks each class received vs slept
		// through. ticks + sleeps = EventCycles * class size. The sleep
		// fraction is the share of hierarchy component-cycles never
		// evaluated — the work the wholesale tick used to burn on no-ops.
		NoCTicks               uint64  `json:"noc_ticks"`
		NoCSleeps              uint64  `json:"noc_sleeps"`
		DRAMTicks              uint64  `json:"dram_ticks"`
		DRAMSleeps             uint64  `json:"dram_sleeps"`
		L2Ticks                uint64  `json:"l2_ticks"`
		L2Sleeps               uint64  `json:"l2_sleeps"`
		L1Ticks                uint64  `json:"l1_ticks"`
		L1Sleeps               uint64  `json:"l1_sleeps"`
		HierarchySleepFraction float64 `json:"hierarchy_sleep_fraction"`
	} `json:"single_sim"`

	// The same single simulation on the event engine with per-component
	// wakes disabled (every executed cycle ticks the whole hierarchy).
	// CompWakesSpeedup is the honest mode-vs-mode comparison for the
	// per-component dispatcher: same engine, same machine, back-to-back.
	FullTick struct {
		WallNsPerRun     int64   `json:"wall_ns_per_run"`
		NsPerSimCycle    float64 `json:"ns_per_sim_cycle"`
		CompWakesSpeedup float64 `json:"comp_wakes_speedup"`
		BitIdentical     bool    `json:"bit_identical"`
	} `json:"full_hierarchy_tick"`

	// The same single simulation forced onto the legacy per-cycle loop
	// (tick every component every executed cycle, probe-based skipping).
	// EventSpeedup is the honest engine-vs-engine comparison: same
	// machine, same process, back-to-back measurement.
	LegacyLoop struct {
		WallNsPerRun      int64   `json:"wall_ns_per_run"`
		NsPerSimCycle     float64 `json:"ns_per_sim_cycle"`
		RunCyclesExecuted uint64  `json:"run_cycles_executed"`
		RunCyclesSkipped  uint64  `json:"run_cycles_skipped"`
		SkipWindows       uint64  `json:"skip_windows"`
		MeanSkipWidth     float64 `json:"mean_skip_width"`
		EventSpeedup      float64 `json:"event_engine_speedup"`
		BitIdentical      bool    `json:"bit_identical"`
	} `json:"legacy_loop"`

	// The same single simulation under the parallel SM tick.
	ParallelTick struct {
		SimWorkers             int     `json:"simworkers"`
		WallNsPerRun           int64   `json:"wall_ns_per_run"`
		NsPerSimCycle          float64 `json:"ns_per_sim_cycle"`
		Speedup                float64 `json:"speedup_vs_simworkers_1"`
		ParallelTickEfficiency float64 `json:"parallel_tick_efficiency"`
		BitIdentical           bool    `json:"bit_identical"`
	} `json:"parallel_tick"`

	// Fig-12 grid wall time: same grid, Workers=1 vs Workers=N, plus
	// the bit-identity check between the two result sets.
	Fig12Grid struct {
		Simulations  int     `json:"simulations"`
		SerialNs     int64   `json:"serial_wall_ns"`
		ParallelNs   int64   `json:"parallel_wall_ns"`
		Speedup      float64 `json:"speedup"`
		BitIdentical bool    `json:"bit_identical"`
	} `json:"fig12_grid"`

	// Relaxed-sync bounded-slack execution (Config.Slack) on the same
	// Fig-12 grid vs the exact serial event engine, with the
	// per-workload cycle-count deviation the slack introduces.
	// Functional identity of every relaxed run is enforced inside the
	// measurement itself: each simulation verifies its workload's final
	// memory word-for-word against the sequential reference before
	// returning, so a functional divergence fails the bench rather than
	// skewing it.
	RelaxedSync struct {
		SlackCycles uint64  `json:"slack_cycles"`
		SimWorkers  int     `json:"simworkers"`
		Rounds      int     `json:"rounds"`
		Simulations int     `json:"simulations"`
		ExactNs     int64   `json:"exact_wall_ns"`
		RelaxedNs   int64   `json:"relaxed_wall_ns"`
		Speedup     float64 `json:"speedup_vs_serial_event_engine"`

		// Cycle-count deviation of the relaxed grid vs the exact grid,
		// per workload (aggregated across that workload's protocol and
		// consistency variants) and overall.
		MeanAbsCycleDeviationPct float64            `json:"mean_abs_cycle_deviation_pct"`
		MaxAbsCycleDeviationPct  float64            `json:"max_abs_cycle_deviation_pct"`
		Workloads                []RelaxedDeviation `json:"workload_cycle_deviation"`

		// Epoch and exchange accounting from a representative single
		// simulation (the single-sim workload under the slack above).
		// DomainEpochs[i] counts epochs in which domain i did real work:
		// entries 0..numSMs-1 are the SM domains, the last entry is the
		// shared mem side (L2 banks + DRAM partitions, ticked inside the
		// barrier exchange).
		Epochs           uint64   `json:"epochs"`
		SMDomainCycles   uint64   `json:"sm_domain_cycles"`
		SMDomainSkipped  uint64   `json:"sm_domain_skipped"`
		MemDomainCycles  uint64   `json:"mem_domain_cycles"`
		MemDomainSkipped uint64   `json:"mem_domain_skipped"`
		ExchangedMsgs    uint64   `json:"exchanged_msgs"`
		HeldMsgs         uint64   `json:"held_msgs"`
		DomainEpochs     []uint64 `json:"domain_epochs"`
	} `json:"relaxed_sync"`
}

// RelaxedDeviation aggregates the relaxed-vs-exact cycle-count
// deviation of one workload across every Fig-12 grid variant it runs
// under.
type RelaxedDeviation struct {
	Workload   string  `json:"workload"`
	Cells      int     `json:"cells"`
	MeanAbsPct float64 `json:"mean_abs_cycle_deviation_pct"`
	MaxAbsPct  float64 `json:"max_abs_cycle_deviation_pct"`
}

// RunBenchSim executes the benchmark harness: cfg sets the machine
// (tests/CI use a small one), workers the parallel session worker
// count, simWorkers the intra-simulation SM tick worker count for the
// parallel-tick measurement (<=1 skips that section's speedup claim
// but still records the serial numbers).
func RunBenchSim(cfg Config, workers, simWorkers int) (*BenchSim, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if simWorkers <= 0 {
		simWorkers = runtime.GOMAXPROCS(0)
	}
	// The pool sections need schedulable parallelism to engage at all:
	// on hosts pinned below 4 CPUs the staged-tick pool would silently
	// clamp to serial (effectiveWorkers) and the efficiency metric
	// would measure nothing, so the bench raises GOMAXPROCS for its
	// duration exactly as the parallel regression tests do. NumCPU
	// still records the real hardware; on a single-CPU host the pool
	// sections then honestly measure scheduling overhead, not parallel
	// speedup.
	if runtime.GOMAXPROCS(0) < 4 {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	}
	out := &BenchSim{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Workers:    workers,
	}

	// Single-sim cycle loop: BH under G-TSC/RC, measured three ways —
	// event engine with per-component wakes (the default), same engine
	// with wakes disabled (wholesale hierarchy tick), and the legacy
	// per-cycle loop. Each mode gets a warmup run, then the timed runs
	// are interleaved round-robin: on a shared, throttling-prone host,
	// low-frequency load drift would otherwise land entirely on
	// whichever mode happened to run in the slow window and invert the
	// mode-vs-mode ratios. Allocation deltas bracket only the
	// event-engine run of each round (the runs are strictly sequential,
	// so the deltas are attributable).
	var wl *workload.Workload
	for _, w := range workload.All() {
		if w.Name == "BH" {
			wl = w
		}
	}
	simCfg := sim.DefaultConfig()
	simCfg.Mem.Protocol = memsys.GTSC
	simCfg.Mem.NumSMs = cfg.NumSMs
	simCfg.Mem.NumBanks = cfg.NumBanks
	simCfg.SimWorkers = 1
	warmSim := sim.New(simCfg)
	warm, err := wl.Build(cfg.Scale).RunOn(warmSim)
	if err != nil {
		return nil, err
	}
	warmEng := *warmSim.Engine()

	// Warm the other two modes before any timed round.
	ftCfg := simCfg
	ftCfg.DisableComponentWakes = true
	ftWarm, err := wl.Build(cfg.Scale).Run(ftCfg)
	if err != nil {
		return nil, err
	}
	legCfg := simCfg
	legCfg.Engine = sim.EngineLegacy
	legSim := sim.New(legCfg)
	legWarm, err := wl.Build(cfg.Scale).RunOn(legSim)
	if err != nil {
		return nil, err
	}
	legEng := *legSim.Engine()

	const iters = 5
	var ms0, ms1 runtime.MemStats
	var wall, ftWall, legWall time.Duration
	var allocs, bytes uint64
	runtime.GC()
	for i := 0; i < iters; i++ {
		runtime.ReadMemStats(&ms0)
		t0 := time.Now()
		if _, err := wl.Build(cfg.Scale).Run(simCfg); err != nil {
			return nil, err
		}
		wall += time.Since(t0)
		runtime.ReadMemStats(&ms1)
		allocs += ms1.Mallocs - ms0.Mallocs
		bytes += ms1.TotalAlloc - ms0.TotalAlloc

		t0 = time.Now()
		if _, err := wl.Build(cfg.Scale).Run(ftCfg); err != nil {
			return nil, err
		}
		ftWall += time.Since(t0)

		t0 = time.Now()
		if _, err := wl.Build(cfg.Scale).Run(legCfg); err != nil {
			return nil, err
		}
		legWall += time.Since(t0)
	}
	ss := &out.SingleSim
	ss.Workload = wl.Name
	ss.Protocol = "G-TSC/RC"
	ss.Engine = warmEng.Mode()
	ss.Iterations = iters
	ss.SimCycles = warm.Cycles
	ss.WallNsPerRun = wall.Nanoseconds() / iters
	ss.NsPerSimCycle = float64(ss.WallNsPerRun) / float64(warm.Cycles)
	ss.AllocsPerRun = allocs / iters
	ss.BytesPerRun = bytes / iters
	ss.RunCyclesExecuted = warmEng.RunCycles
	ss.RunCyclesSkipped = warmEng.RunSkipped
	ss.DrainCyclesExecuted = warmEng.DrainCycles
	ss.DrainCyclesSkipped = warmEng.DrainSkipped
	ss.SkippedCycles = warmEng.SkippedCycles()
	ss.SkipWindows = warmEng.SkipWindows
	ss.MeanSkipWidth = warmEng.MeanSkipWidth()
	ss.Dispatches = warmEng.Dispatches()
	ss.EventCycles = warmEng.EventCycles
	ss.SMTicks = warmEng.SMTicks
	ss.SMSleepCycles = warmEng.SMSleepCycles
	ss.SMWakes = warmEng.SMWakes
	ss.NoCTicks = warmEng.Comp.NoCTicks
	ss.NoCSleeps = warmEng.Comp.NoCSleeps
	ss.DRAMTicks = warmEng.Comp.DRAMTicks
	ss.DRAMSleeps = warmEng.Comp.DRAMSleeps
	ss.L2Ticks = warmEng.Comp.L2Ticks
	ss.L2Sleeps = warmEng.Comp.L2Sleeps
	ss.L1Ticks = warmEng.Comp.L1Ticks
	ss.L1Sleeps = warmEng.Comp.L1Sleeps
	if total := warmEng.Comp.HierarchyTicks() + warmEng.Comp.HierarchySleeps(); total > 0 {
		ss.HierarchySleepFraction = float64(warmEng.Comp.HierarchySleeps()) / float64(total)
	}

	// Per-component wakes off, same engine: isolates what the
	// per-component dispatcher buys over the wholesale hierarchy tick.
	ft := &out.FullTick
	ft.WallNsPerRun = ftWall.Nanoseconds() / iters
	ft.NsPerSimCycle = float64(ft.WallNsPerRun) / float64(ftWarm.Cycles)
	ft.CompWakesSpeedup = float64(ft.WallNsPerRun) / float64(ss.WallNsPerRun)
	ft.BitIdentical = reflect.DeepEqual(warm, ftWarm)

	// The same simulation on the legacy per-cycle loop: the engine
	// comparison the event engine is judged by.
	ll := &out.LegacyLoop
	ll.WallNsPerRun = legWall.Nanoseconds() / iters
	ll.NsPerSimCycle = float64(ll.WallNsPerRun) / float64(legWarm.Cycles)
	ll.RunCyclesExecuted = legEng.RunCycles
	ll.RunCyclesSkipped = legEng.RunSkipped
	ll.SkipWindows = legEng.SkipWindows
	ll.MeanSkipWidth = legEng.MeanSkipWidth()
	ll.EventSpeedup = float64(ll.WallNsPerRun) / float64(ss.WallNsPerRun)
	ll.BitIdentical = reflect.DeepEqual(warm, legWarm)

	// Same simulation under the barrier-synchronized parallel tick.
	// Results must be bit-identical to the serial run; the wall-time
	// comparison is the honest one (same skip policy on both sides).
	parSimCfg := simCfg
	parSimCfg.SimWorkers = simWorkers
	parWarmSim := sim.New(parSimCfg)
	parWarm, err := wl.Build(cfg.Scale).RunOn(parWarmSim)
	if err != nil {
		return nil, err
	}
	t0 := time.Now()
	for i := 0; i < iters; i++ {
		if _, err := wl.Build(cfg.Scale).Run(parSimCfg); err != nil {
			return nil, err
		}
	}
	parWall := time.Since(t0)
	pt := &out.ParallelTick
	pt.SimWorkers = simWorkers
	pt.WallNsPerRun = parWall.Nanoseconds() / iters
	pt.NsPerSimCycle = float64(pt.WallNsPerRun) / float64(parWarm.Cycles)
	pt.Speedup = float64(ss.WallNsPerRun) / float64(pt.WallNsPerRun)
	pt.ParallelTickEfficiency = parWarmSim.Engine().ParallelTickEfficiency()
	pt.BitIdentical = reflect.DeepEqual(warm, parWarm)

	// Fig-12 grid: serial then parallel, fresh sessions so neither
	// benefits from the other's cache, then bit-identity.
	serialCfg := cfg
	serialCfg.Workers = 1
	serial := NewSession(serialCfg)
	t0 = time.Now()
	if _, err := serial.RunFig12(); err != nil {
		return nil, err
	}
	serialNs := time.Since(t0).Nanoseconds()

	parCfg := cfg
	parCfg.Workers = workers
	par := NewSession(parCfg)
	t0 = time.Now()
	if _, err := par.RunFig12(); err != nil {
		return nil, err
	}
	parallelNs := time.Since(t0).Nanoseconds()

	g := &out.Fig12Grid
	g.Simulations = len(serial.CachedRuns())
	g.SerialNs = serialNs
	g.ParallelNs = parallelNs
	g.Speedup = float64(serialNs) / float64(parallelNs)
	g.BitIdentical = reflect.DeepEqual(serial.CachedRuns(), par.CachedRuns())

	// Relaxed-sync grid: the bounded-slack epoch engine vs the exact
	// serial event engine on the same Fig-12 grid. Both sides run
	// Workers=1 sessions (one simulation at a time) so the comparison
	// isolates the engine, not session-level fan-out, and the rounds
	// are interleaved for the same load-drift reason as the single-sim
	// section (fresh sessions each round — the result cache would
	// otherwise turn later rounds into no-ops). The relaxed side
	// engages its domain pool only when the host has CPUs to run
	// domains on: with one CPU, epoch barriers would buy pure
	// park/unpark overhead, so SimWorkers is forced to 1 and the
	// speedup then measures the epoch engine's serial efficiency alone.
	// Slack 32 sits at the knee of the slack sweep: with the
	// delivery-horizon barrier pull-in the mean cycle deviation stays
	// under ~5%, epoch barriers are amortized enough that doubling the
	// slack again buys almost nothing, and past the NoC round-trip
	// latency (~64 cycles) deviation inflates sharply because round
	// trips that start and finish inside one window are invisible to
	// the pull-in horizon.
	const relaxSlack = 32
	const relaxRounds = 3
	relaxWorkers := simWorkers
	if runtime.NumCPU() < 2 {
		relaxWorkers = 1
	}
	exactCfg := cfg
	exactCfg.Workers = 1
	exactCfg.SimWorkers = 1
	exactCfg.Slack = 0
	relaxCfg := cfg
	relaxCfg.Workers = 1
	relaxCfg.SimWorkers = relaxWorkers
	relaxCfg.Slack = relaxSlack

	var exactWall, relaxWall time.Duration
	var exactRuns, relaxRuns map[string]*stats.Run
	for i := 0; i < relaxRounds; i++ {
		es := NewSession(exactCfg)
		t0 = time.Now()
		if _, err := es.RunFig12(); err != nil {
			return nil, err
		}
		exactWall += time.Since(t0)
		rs := NewSession(relaxCfg)
		t0 = time.Now()
		if _, err := rs.RunFig12(); err != nil {
			return nil, err
		}
		relaxWall += time.Since(t0)
		exactRuns, relaxRuns = es.CachedRuns(), rs.CachedRuns()
	}

	rx := &out.RelaxedSync
	rx.SlackCycles = relaxSlack
	rx.SimWorkers = relaxWorkers
	rx.Rounds = relaxRounds
	rx.Simulations = len(relaxRuns)
	rx.ExactNs = exactWall.Nanoseconds() / relaxRounds
	rx.RelaxedNs = relaxWall.Nanoseconds() / relaxRounds
	rx.Speedup = float64(exactWall) / float64(relaxWall)

	// Join the two result sets on (workload, variant): the cache key's
	// final component is the slack, so stripping it aligns the sides.
	trim := func(runs map[string]*stats.Run) map[string]*stats.Run {
		m := make(map[string]*stats.Run, len(runs))
		for k, r := range runs {
			m[k[:strings.LastIndexByte(k, '/')]] = r
		}
		return m
	}
	exactBy, relaxBy := trim(exactRuns), trim(relaxRuns)
	per := map[string]*RelaxedDeviation{}
	var devSum float64
	var devCells int
	for k, er := range exactBy {
		rr, ok := relaxBy[k]
		if !ok || er.Cycles == 0 {
			continue
		}
		pct := 100 * (float64(rr.Cycles) - float64(er.Cycles)) / float64(er.Cycles)
		if pct < 0 {
			pct = -pct
		}
		name := k[:strings.IndexByte(k, '/')]
		d := per[name]
		if d == nil {
			d = &RelaxedDeviation{Workload: name}
			per[name] = d
		}
		d.Cells++
		d.MeanAbsPct += pct // running sum; divided by Cells below
		if pct > d.MaxAbsPct {
			d.MaxAbsPct = pct
		}
		devSum += pct
		devCells++
	}
	names := make([]string, 0, len(per))
	for name := range per {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		d := per[name]
		d.MeanAbsPct /= float64(d.Cells)
		if d.MaxAbsPct > rx.MaxAbsCycleDeviationPct {
			rx.MaxAbsCycleDeviationPct = d.MaxAbsPct
		}
		rx.Workloads = append(rx.Workloads, *d)
	}
	if devCells > 0 {
		rx.MeanAbsCycleDeviationPct = devSum / float64(devCells)
	}

	// Epoch and exchange accounting from a representative single
	// simulation: the single-sim workload on the relaxed engine.
	rxCfg := simCfg
	rxCfg.SlackCycles = relaxSlack
	rxCfg.SimWorkers = relaxWorkers
	rxSim := sim.New(rxCfg)
	if _, err := wl.Build(cfg.Scale).RunOn(rxSim); err != nil {
		return nil, err
	}
	rst := rxSim.Engine().Relaxed
	rx.Epochs = rst.Epochs
	rx.SMDomainCycles = rst.SMDomainCycles
	rx.SMDomainSkipped = rst.SMDomainSkipped
	rx.MemDomainCycles = rst.MemDomainCycles
	rx.MemDomainSkipped = rst.MemDomainSkipped
	rx.ExchangedMsgs = rst.ExchangedMsgs
	rx.HeldMsgs = rst.HeldMsgs
	rx.DomainEpochs = rst.DomainEpochs
	return out, nil
}

// WriteJSON writes the snapshot to path, indented for diffability.
func (b *BenchSim) WriteJSON(path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
