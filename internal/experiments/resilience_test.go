package experiments

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"testing"
	"time"

	"github.com/gtsc-sim/gtsc/internal/diag"
	"github.com/gtsc-sim/gtsc/internal/sim"
	"github.com/gtsc-sim/gtsc/internal/stats"
	"github.com/gtsc-sim/gtsc/internal/workload"
)

// smallCfg is a fast machine for resilience tests: tiny inputs, tiny
// geometry, serial by default so journal record order is stable.
func smallCfg() Config {
	return Config{Scale: 1, NumSMs: 2, NumBanks: 2, Workers: 1}
}

// smallGrid prewarms a 2-workload x 2-variant grid and returns an
// error only if the session reports one.
func smallGrid(s *Session) error {
	return s.prewarmGrid(workload.All()[:2], vGTSCRC, vTCRC)
}

// TestJournalReplayNoReexec is the resume acceptance gate at the
// sweep level: a session restarted on an existing journal restores
// every completed run from disk and re-executes NOTHING — pinned by
// the executed run-counter — while producing bit-identical results.
func TestJournalReplayNoReexec(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.jrnl")

	s1 := NewSession(smallCfg())
	if _, err := s1.AttachJournal(path); err != nil {
		t.Fatalf("attach 1: %v", err)
	}
	if err := smallGrid(s1); err != nil {
		t.Fatalf("grid 1: %v", err)
	}
	if err := s1.CloseJournal(); err != nil {
		t.Fatalf("close 1: %v", err)
	}
	want := s1.CachedRuns()
	if len(want) != 4 || s1.Executed() != 4 {
		t.Fatalf("session 1 ran %d sims with %d cached, want 4/4", s1.Executed(), len(want))
	}

	s2 := NewSession(smallCfg())
	replayed, err := s2.AttachJournal(path)
	if err != nil {
		t.Fatalf("attach 2: %v", err)
	}
	if replayed != 4 {
		t.Fatalf("replayed %d runs, want 4", replayed)
	}
	if s2.JournalDroppedTail() {
		t.Error("clean journal reported a torn tail")
	}
	if err := smallGrid(s2); err != nil {
		t.Fatalf("grid 2: %v", err)
	}
	if got := s2.Executed(); got != 0 {
		t.Errorf("restarted session re-executed %d runs, want 0", got)
	}
	if got := s2.CachedRuns(); !reflect.DeepEqual(got, want) {
		t.Error("journal-replayed results differ from the originals")
	}
	if err := s2.CloseJournal(); err != nil {
		t.Fatalf("close 2: %v", err)
	}
}

// TestJournalTornTailResume kills the journal the hard way — a
// truncated final record, as a crash mid-append leaves — and proves
// the restart drops ONLY the torn record: the intact ones replay, and
// exactly one simulation re-executes.
func TestJournalTornTailResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.jrnl")

	s1 := NewSession(smallCfg())
	if _, err := s1.AttachJournal(path); err != nil {
		t.Fatalf("attach 1: %v", err)
	}
	if err := smallGrid(s1); err != nil {
		t.Fatalf("grid 1: %v", err)
	}
	if err := s1.CloseJournal(); err != nil {
		t.Fatalf("close 1: %v", err)
	}
	want := s1.CachedRuns()

	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()-3); err != nil {
		t.Fatal(err)
	}

	s2 := NewSession(smallCfg())
	replayed, err := s2.AttachJournal(path)
	if err != nil {
		t.Fatalf("attach on torn journal must not be fatal: %v", err)
	}
	if !s2.JournalDroppedTail() {
		t.Error("torn tail not reported")
	}
	if replayed != 3 {
		t.Errorf("replayed %d runs, want 3 (torn record dropped)", replayed)
	}
	if err := smallGrid(s2); err != nil {
		t.Fatalf("grid 2: %v", err)
	}
	if got := s2.Executed(); got != 1 {
		t.Errorf("re-executed %d runs, want exactly the 1 torn-away run", got)
	}
	if got := s2.CachedRuns(); !reflect.DeepEqual(got, want) {
		t.Error("post-repair results differ from the originals")
	}
	if err := s2.CloseJournal(); err != nil {
		t.Fatalf("close 2: %v", err)
	}
}

// TestJournalConfigSignature: a journal must only feed a session with
// the same result-affecting configuration — but scheduling knobs
// (Workers) are excluded, so -j can change between runs.
func TestJournalConfigSignature(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.jrnl")
	s1 := NewSession(smallCfg())
	if _, err := s1.AttachJournal(path); err != nil {
		t.Fatalf("attach: %v", err)
	}
	if err := s1.CloseJournal(); err != nil {
		t.Fatal(err)
	}

	bad := smallCfg()
	bad.NumSMs = 4
	if _, err := NewSession(bad).AttachJournal(path); err == nil {
		t.Error("journal accepted by a session with different machine geometry")
	}

	ok := smallCfg()
	ok.Workers = 7 // scheduling only; results are identical at any -j
	s2 := NewSession(ok)
	if _, err := s2.AttachJournal(path); err != nil {
		t.Errorf("worker-count change rejected the journal: %v", err)
	}
	s2.CloseJournal()
}

// TestPanicIsolation: a panic inside one simulation becomes a typed
// *diag.WorkerPanicError cached for that cell only; sibling runs
// complete and KeepGoing assembly reports the cell in Missing().
func TestPanicIsolation(t *testing.T) {
	cfg := smallCfg()
	cfg.KeepGoing = true
	s := NewSession(cfg)
	s.runSim = func(ctx context.Context, inst *workload.Instance, c sim.Config) (*stats.Run, error) {
		if c.Mem.Protocol == vTCRC.proto {
			panic("injected test panic")
		}
		return &stats.Run{Cycles: 42}, nil
	}

	wl := workload.All()[0]
	if err := s.parallel(s.gridJobs([]*workload.Workload{wl}, vGTSCRC, vTCRC)); err != nil {
		t.Fatalf("KeepGoing fan-out returned an error: %v", err)
	}

	if run, err := s.run(wl, vGTSCRC); err != nil || run.Cycles != 42 {
		t.Errorf("sibling run damaged by the panic: run=%v err=%v", run, err)
	}
	_, err := s.run(wl, vTCRC)
	var wp *diag.WorkerPanicError
	if !errors.As(err, &wp) {
		t.Fatalf("panicking cell error = %v, want *diag.WorkerPanicError", err)
	}
	if wp.Value != "injected test panic" || wp.Stack == "" {
		t.Errorf("panic not captured: value=%q stackLen=%d", wp.Value, len(wp.Stack))
	}
	missing := s.Missing()
	if len(missing) != 1 || missing[0] != s.key(wl.Name, vTCRC) {
		t.Errorf("Missing() = %v, want exactly the panicked key", missing)
	}
}

// TestRetryTransient: transient fault-injected failures (deadlocks
// under an active fault plan) are retried with exponential backoff
// and a fresh derived seed per attempt; success on a later attempt
// yields the run, and the retry budget is bounded.
func TestRetryTransient(t *testing.T) {
	cfg := smallCfg()
	cfg.FaultSeed = 7
	cfg.RetryTransient = 3
	s := NewSession(cfg)

	var slept []time.Duration
	s.sleep = func(d time.Duration) { slept = append(slept, d) }
	var seeds []int64
	s.runSim = func(ctx context.Context, inst *workload.Instance, c sim.Config) (*stats.Run, error) {
		seeds = append(seeds, c.Mem.Fault.Seed)
		if len(seeds) <= 2 {
			return nil, &diag.DeadlockError{Kernel: "k", Cycle: 99, Reason: "injected"}
		}
		return &stats.Run{Cycles: 7}, nil
	}

	wl := workload.All()[0]
	run, err := s.run(wl, vGTSCRC)
	if err != nil || run.Cycles != 7 {
		t.Fatalf("run after transient failures: run=%v err=%v", run, err)
	}
	if len(seeds) != 3 {
		t.Fatalf("made %d attempts, want 3", len(seeds))
	}
	if seeds[0] != 7 || seeds[0] == seeds[1] || seeds[1] == seeds[2] {
		t.Errorf("retries must derive fresh seeds (deterministic engine reproduces the same failure): %v", seeds)
	}
	if want := []time.Duration{25 * time.Millisecond, 50 * time.Millisecond}; !reflect.DeepEqual(slept, want) {
		t.Errorf("backoff = %v, want %v", slept, want)
	}

	// Exhaustion: a cell that never recovers fails after 1+RetryTransient
	// attempts with the last error.
	attempts := 0
	s2 := NewSession(cfg)
	s2.sleep = func(time.Duration) {}
	s2.runSim = func(ctx context.Context, inst *workload.Instance, c sim.Config) (*stats.Run, error) {
		attempts++
		return nil, &diag.DeadlockError{Kernel: "k", Cycle: 1, Reason: "stuck"}
	}
	if _, err := s2.run(wl, vGTSCRC); err == nil {
		t.Fatal("exhausted retries still reported success")
	}
	if attempts != 4 {
		t.Errorf("made %d attempts, want 1 + RetryTransient = 4", attempts)
	}
}

// TestRetryOnlyTransient: without a fault plan, or for non-deadlock
// errors, there is exactly one attempt — retry must never mask a
// genuine protocol bug.
func TestRetryOnlyTransient(t *testing.T) {
	wl := workload.All()[0]

	// No fault plan: a deadlock is a real bug, not noise.
	cfg := smallCfg()
	cfg.RetryTransient = 3
	s := NewSession(cfg)
	s.sleep = func(time.Duration) { t.Error("backoff slept without a fault plan") }
	attempts := 0
	s.runSim = func(ctx context.Context, inst *workload.Instance, c sim.Config) (*stats.Run, error) {
		attempts++
		return nil, &diag.DeadlockError{Kernel: "k", Cycle: 1, Reason: "real"}
	}
	if _, err := s.run(wl, vGTSCRC); err == nil || attempts != 1 {
		t.Errorf("deadlock without fault plan: attempts=%d err=%v, want 1 attempt + error", attempts, err)
	}

	// Fault plan active, but a protocol violation: never retried.
	cfg2 := smallCfg()
	cfg2.FaultSeed = 7
	cfg2.RetryTransient = 3
	s2 := NewSession(cfg2)
	s2.sleep = func(time.Duration) { t.Error("backoff slept for a non-transient error") }
	attempts2 := 0
	s2.runSim = func(ctx context.Context, inst *workload.Instance, c sim.Config) (*stats.Run, error) {
		attempts2++
		return nil, &diag.ProtocolError{Component: "l1[0]", Event: "stale-value", Detail: "injected"}
	}
	if _, err := s2.run(wl, vGTSCRC); err == nil || attempts2 != 1 {
		t.Errorf("protocol error under fault plan: attempts=%d err=%v, want 1 attempt + error", attempts2, err)
	}
}

// TestSessionContextCancel: a canceled session context stops the
// sweep with the cancellation cause instead of running anything.
func TestSessionContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s := NewSession(smallCfg()).WithContext(ctx)
	err := smallGrid(s)
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled session ran anyway: %v", err)
	}
}

// TestWatchdogOversubscribed pins the satellite requirement that the
// forward-progress watchdog counts SIMULATED cycles only: a worker
// pool oversubscribed far past GOMAXPROCS parks runs for long
// wall-clock stretches, but a parked run makes no simulated progress
// and therefore cannot trip even a tight window.
func TestWatchdogOversubscribed(t *testing.T) {
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)

	cfg := smallCfg()
	cfg.Workers = 8 // 8 workers on 1 OS thread: heavy descheduling
	cfg.WatchdogWindow = 10_000
	s := NewSession(cfg)
	if err := s.prewarmGrid(workload.All()[:4], vGTSCRC, vTCRC); err != nil {
		t.Fatalf("oversubscribed sweep tripped: %v", err)
	}
	if got := s.Executed(); got != 8 {
		t.Fatalf("executed %d runs, want 8", got)
	}

	// Same machine, serial: bit-identical results prove the watchdog
	// (and the oversubscription) fed nothing back into the simulations.
	ref := NewSession(Config{Scale: 1, NumSMs: 2, NumBanks: 2, Workers: 1, WatchdogWindow: 10_000})
	if err := ref.prewarmGrid(workload.All()[:4], vGTSCRC, vTCRC); err != nil {
		t.Fatalf("serial reference sweep failed: %v", err)
	}
	if !reflect.DeepEqual(s.CachedRuns(), ref.CachedRuns()) {
		t.Error("oversubscribed results differ from serial reference")
	}
}
