package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// tinyConfig keeps experiment tests fast: a 4-SM machine at scale 1.
func tinyConfig() Config {
	cfg := DefaultConfig()
	cfg.Scale = 1
	cfg.NumSMs = 4
	cfg.NumBanks = 4
	return cfg
}

func TestFig12Shapes(t *testing.T) {
	s := NewSession(tinyConfig())
	r, err := s.RunFig12()
	if err != nil {
		t.Fatal(err)
	}
	// The paper's headline orderings must reproduce on the coherence
	// set: G-TSC-RC beats TC-RC, and even G-TSC-SC beats TC-RC.
	if r.GTSCRCoverTCRC <= 1.0 {
		t.Fatalf("G-TSC-RC must outperform TC-RC, got %.2fx", r.GTSCRCoverTCRC)
	}
	if r.GTSCSCoverTCRC <= 1.0 {
		t.Fatalf("G-TSC-SC must outperform TC-RC, got %.2fx", r.GTSCSCoverTCRC)
	}
	if r.GTSCRCoverSC < 1.0 {
		t.Fatalf("RC must not lose to SC on average for G-TSC, got %.2fx", r.GTSCRCoverSC)
	}
	// The non-coherent overhead stays moderate (paper ~11%).
	if r.GTSCvsL1NCOverhead < -0.05 || r.GTSCvsL1NCOverhead > 0.6 {
		t.Fatalf("G-TSC overhead vs non-coherent L1 out of range: %.2f", r.GTSCvsL1NCOverhead)
	}
	var buf bytes.Buffer
	r.Print(&buf)
	if !strings.Contains(buf.String(), "G-TSC-RC") {
		t.Fatal("print output incomplete")
	}
}

func TestFig13And15Shapes(t *testing.T) {
	s := NewSession(tinyConfig())
	f13, err := s.RunFig13()
	if err != nil {
		t.Fatal(err)
	}
	if f13.TCOverGTSCSet1 <= 1.0 {
		t.Fatalf("TC must stall more than G-TSC on the coherence set, got %.2fx", f13.TCOverGTSCSet1)
	}
	f15, err := s.RunFig15()
	if err != nil {
		t.Fatal(err)
	}
	if f15.ReductionRC <= 0 {
		t.Fatalf("G-TSC must reduce NoC traffic vs TC under RC, got %.2f", f15.ReductionRC)
	}
	var buf bytes.Buffer
	f13.Print(&buf)
	f15.Print(&buf)
	if buf.Len() == 0 {
		t.Fatal("no print output")
	}
}

func TestFig14LeaseInsensitivity(t *testing.T) {
	s := NewSession(tinyConfig())
	r, err := s.RunFig14()
	if err != nil {
		t.Fatal(err)
	}
	// The paper reports insensitivity across 8-20; allow a small band.
	if r.MaxSpread > 0.1 {
		t.Fatalf("lease sensitivity too high: %.2f", r.MaxSpread)
	}
}

func TestTableIIAndAblations(t *testing.T) {
	s := NewSession(tinyConfig())
	t2, err := s.RunTableII()
	if err != nil {
		t.Fatal(err)
	}
	if len(t2.Workloads) != 12 {
		t.Fatal("Table II must cover all 12 benchmarks")
	}
	for _, n := range t2.Workloads {
		if t2.BLCycles[n] == 0 || t2.TCCycles[n] == 0 {
			t.Fatalf("%s: zero cycles", n)
		}
	}
	comb, err := s.RunAblationCombining()
	if err != nil {
		t.Fatal(err)
	}
	if comb.MsgIncrease <= 0 {
		t.Fatalf("forward-all must increase requests, got %.2f", comb.MsgIncrease)
	}
	vis, err := s.RunAblationVisibility()
	if err != nil {
		t.Fatal(err)
	}
	// The paper found the difference negligible; allow a wide band but
	// require both to complete.
	if vis.Option2Speedup < 0.5 || vis.Option2Speedup > 2.0 {
		t.Fatalf("visibility ablation ratio implausible: %.2f", vis.Option2Speedup)
	}
}

func TestRunOneUnknown(t *testing.T) {
	s := NewSession(tinyConfig())
	var buf bytes.Buffer
	if err := s.RunOne("nope", &buf); err == nil {
		t.Fatal("unknown experiment must error")
	}
	if err := s.RunOne("expiry", &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "expiration") {
		t.Fatal("expiry output missing")
	}
}

func TestSessionCaching(t *testing.T) {
	s := NewSession(tinyConfig())
	if _, err := s.RunFig12(); err != nil {
		t.Fatal(err)
	}
	n := len(s.cache)
	if n == 0 {
		t.Fatal("cache empty after a figure")
	}
	// Fig 13 reuses the same runs: no new simulations.
	if _, err := s.RunFig13(); err != nil {
		t.Fatal(err)
	}
	if len(s.cache) != n {
		t.Fatalf("Fig 13 should be fully cached: %d -> %d", n, len(s.cache))
	}
}

func TestExtensions(t *testing.T) {
	s := NewSession(tinyConfig())

	lease, err := s.RunAblationLease()
	if err != nil {
		t.Fatal(err)
	}
	if lease.RenewalCut <= 0 {
		t.Fatalf("adaptive leases must cut renewals, got %.2f", lease.RenewalCut)
	}

	spec, err := s.RunConsistencySpectrum()
	if err != nil {
		t.Fatal(err)
	}
	// TSO sits between SC and RC (inclusive on both sides).
	if spec.TSOoverSC < 0.95 || spec.TSOoverSC > spec.RCoverSC*1.05 {
		t.Fatalf("TSO out of the SC..RC band: TSO %.2f, RC %.2f", spec.TSOoverSC, spec.RCoverSC)
	}

	micro, err := s.RunMicroTable()
	if err != nil {
		t.Fatal(err)
	}
	if len(micro.Micros) != 6 {
		t.Fatalf("expected 6 micros, got %d", len(micro.Micros))
	}
	// False sharing is where G-TSC's no-stall writes shine vs TC.
	if micro.Cycles["FS"]["G-TSC-RC"] >= micro.Cycles["FS"]["TC-RC"] {
		t.Fatal("G-TSC must beat TC on false sharing")
	}
	// HIST performs its atomics at the L2.
	if micro.Atomics["HIST"] == 0 {
		t.Fatal("HIST must count atomics")
	}

	var buf bytes.Buffer
	lease.Print(&buf)
	spec.Print(&buf)
	micro.Print(&buf)
	if buf.Len() == 0 {
		t.Fatal("no print output")
	}
}

func TestScalabilitySweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is slow")
	}
	s := NewSession(tinyConfig())
	r, err := s.RunScalability()
	if err != nil {
		t.Fatal(err)
	}
	for _, sms := range r.SMCounts {
		if r.Speedup[sms] <= 1.0 {
			t.Fatalf("G-TSC must beat TC at %d SMs, got %.2fx", sms, r.Speedup[sms])
		}
	}
}

func TestDirectoryCompare(t *testing.T) {
	s := NewSession(tinyConfig())
	r, err := s.RunDirectoryCompare()
	if err != nil {
		t.Fatal(err)
	}
	if r.GTSCSpeedup < 0.8 {
		t.Fatalf("directory implausibly fast: %.2fx", r.GTSCSpeedup)
	}
	var invs uint64
	for _, n := range r.Workloads {
		invs += r.Invalidations[n]
	}
	if invs == 0 {
		t.Fatal("sharing workloads must trigger invalidations")
	}
	// The §II-C traffic argument: invalidations grow with SM count.
	if r.InvsAt[32] <= r.InvsAt[4] {
		t.Fatalf("invalidations must grow with SMs: %d at 4, %d at 32", r.InvsAt[4], r.InvsAt[32])
	}
	if r.DirBitsAt[32] <= r.DirBitsAt[4] {
		t.Fatal("directory storage must grow with SMs")
	}
	var buf bytes.Buffer
	r.Print(&buf)
	if !strings.Contains(buf.String(), "MESI-dir") {
		t.Fatal("print output incomplete")
	}
}

// TestRunAllTiny smoke-runs the entire suite (all tables, figures,
// ablations and extensions) on a tiny machine — the cmd/gtscbench
// path end to end, covering every Print.
func TestRunAllTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite is slow")
	}
	cfg := tinyConfig()
	s := NewSession(cfg)
	var buf bytes.Buffer
	if err := s.RunAll(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"Table II", "Fig 12", "Fig 13", "Fig 14", "Fig 15", "Fig 16", "Fig 17",
		"SecVI-E", "SecV-A", "SecV-B", "adaptive", "consistency spectrum",
		"machine size", "microbenchmark", "substrate", "L1 geometry", "MESI-dir",
	} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("suite output missing %q", want)
		}
	}
}
