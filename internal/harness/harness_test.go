package harness

import (
	"fmt"
	"testing"

	"github.com/gtsc-sim/gtsc/internal/workload"
)

// TestWorkloadsUnderFaults is the fault-injection smoke suite `make
// check` runs: the six coherence-requiring benchmarks, on every
// protocol variant, under three seeded chaos plans each. A failure
// message carries the full plan; rerunning the named subtest (or
// `gtscsim -faultseed <seed>`) replays the exact schedule.
func TestWorkloadsUnderFaults(t *testing.T) {
	for _, v := range Variants() {
		for _, wl := range workload.CoherenceSet() {
			for _, plan := range Plans(1, 3) {
				v, wl, plan := v, wl, plan
				t.Run(fmt.Sprintf("%s/%s/seed%d", v.Name, wl.Name, plan.Seed), func(t *testing.T) {
					t.Parallel()
					if err := Run(v, plan, wl, 1); err != nil {
						t.Fatal(err)
					}
				})
			}
		}
	}
}
