// Package harness is the fuzz-style fault-injection harness: it runs
// the coherence-requiring benchmarks under seeded chaos fault plans
// (NoC delivery jitter, cross-pair reordering, transient injection
// rejects, DRAM latency spikes, timestamp stress) and verifies both
// the workload's sequential reference and the protocol's ordering
// invariant on the recorded operation log.
//
// Every perturbation is drawn from one deterministic stream, so any
// failure the harness reports reproduces exactly from its seed —
// rerun the failing case, or replay it interactively with
// `gtscsim -workload <name> -protocol <p> -faultseed <seed> -check`.
package harness

import (
	"fmt"

	"github.com/gtsc-sim/gtsc/internal/check"
	"github.com/gtsc-sim/gtsc/internal/fault"
	"github.com/gtsc-sim/gtsc/internal/gpu"
	"github.com/gtsc-sim/gtsc/internal/memsys"
	"github.com/gtsc-sim/gtsc/internal/sim"
	"github.com/gtsc-sim/gtsc/internal/workload"
)

// Variant pairs a protocol with a consistency model under which the
// harness knows which ordering invariant to check.
type Variant struct {
	Name        string
	Protocol    memsys.Protocol
	Consistency gpu.Consistency
}

// Variants returns the protocol/consistency pairs the harness fuzzes:
// each coherent protocol once, paired so an ordering invariant is
// mechanically checkable (G-TSC's timestamp order holds under any
// model; TC runs strong under SC so physical linearizability applies;
// the directory baseline is linearizable under every model).
func Variants() []Variant {
	return []Variant{
		{"gtsc-rc", memsys.GTSC, gpu.RC},
		{"tc-sc", memsys.TC, gpu.SC},
		{"bl-sc", memsys.BL, gpu.SC},
		{"dir-rc", memsys.DIR, gpu.RC},
	}
}

// Plans returns n chaos plans with consecutive seeds starting at base.
func Plans(base int64, n int) []fault.Config {
	out := make([]fault.Config, n)
	for i := range out {
		out[i] = fault.Chaos(base + int64(i))
	}
	return out
}

// Config returns the small machine the harness fuzzes on: 4 SMs over
// 4 banks with deliberately tight caches and MSHRs, so capacity
// conflicts and protocol races happen within scale-1 benchmarks.
func Config(v Variant) sim.Config {
	cfg := sim.DefaultConfig()
	cfg.Mem.Protocol = v.Protocol
	cfg.Mem.NumSMs = 4
	cfg.Mem.NumBanks = 4
	cfg.Mem.L1Sets = 8
	cfg.Mem.L1Ways = 2
	cfg.Mem.L1MSHRs = 8
	cfg.Mem.L2Sets = 32
	cfg.Mem.L2Ways = 4
	cfg.SM.Consistency = v.Consistency
	cfg.MaxCycles = 20_000_000
	return cfg
}

// Run executes one workload instance under one fault plan and checks
// everything checkable: the run must complete (no deadlock, no
// protocol error), the workload's sequential reference must verify,
// and the operation log must satisfy the variant's ordering rule. The
// returned error includes the plan so the failure replays from its
// seed.
func Run(v Variant, plan fault.Config, wl *workload.Workload, scale int) error {
	cfg := Config(v)
	cfg.Mem.Fault = plan
	rec := check.NewRecorder()
	cfg.Observer = rec
	if _, err := wl.Build(scale).Run(cfg); err != nil {
		return fmt.Errorf("%s on %s under [%s]: %w", wl.Name, v.Name, plan, err)
	}
	if rec.Len() == 0 {
		return fmt.Errorf("%s on %s under [%s]: no operations observed", wl.Name, v.Name, plan)
	}
	var vio []check.Violation
	switch {
	case v.Protocol == memsys.GTSC:
		vio = check.CheckTimestampOrder(rec.Ops(), 3)
	case v.Protocol == memsys.BL || v.Protocol == memsys.DIR ||
		(v.Protocol == memsys.TC && v.Consistency == gpu.SC):
		vio = check.CheckPhysical(rec.Ops(), 3)
	}
	if len(vio) > 0 {
		return fmt.Errorf("%s on %s under [%s]: %s", wl.Name, v.Name, plan, vio[0].Error())
	}
	return nil
}
