package fault

import (
	"fmt"
	"io"
	"sort"

	"github.com/gtsc-sim/gtsc/internal/mem"
)

// DelayShim interposes on a delivery callback (NoC→L1, NoC→L2 or
// DRAM→L2) and perturbs when messages are handed to the receiving
// controller. Messages between one (src,dst) pair are never reordered
// relative to each other — the directory protocol, like real
// protocols, assumes point-to-point FIFO channels — but delivery may
// be delayed, and the order *across* pairs within a cycle may be
// shuffled.
//
// The shim holds messages the underlying transport has already
// retired, so the memory system must count Pending() toward its drain
// check or the simulator could declare the machine idle while
// messages sit here.
type DelayShim struct {
	name    string
	in      *Injector
	prob    float64
	max     uint64
	reorder bool
	deliver func(dst int, msg *mem.Msg)

	now   uint64
	pairs map[uint64]*pairQueue
	keys  []uint64 // sorted active pair keys, for deterministic iteration
	count int
}

type heldMsg struct {
	due uint64
	dst int
	msg *mem.Msg
}

type pairQueue struct{ items []heldMsg }

// NewDelayShim wires a shim over deliver. prob/max control per-message
// extra latency; reorder enables cross-pair same-cycle shuffling.
func NewDelayShim(name string, in *Injector, prob float64, max uint64, reorder bool,
	deliver func(dst int, msg *mem.Msg)) *DelayShim {
	if max == 0 {
		max = 1
	}
	return &DelayShim{
		name: name, in: in, prob: prob, max: max, reorder: reorder,
		deliver: deliver, pairs: make(map[uint64]*pairQueue),
	}
}

// Deliver stages one arriving message. It is installed in place of the
// component's original delivery callback.
func (d *DelayShim) Deliver(dst int, msg *mem.Msg) {
	var extra uint64
	if d.in.rng.chance(d.prob) {
		extra = 1 + d.in.rng.uint64n(d.max)
	}
	due := d.now + extra
	key := uint64(uint32(msg.Src))<<32 | uint64(uint32(dst))
	q, ok := d.pairs[key]
	if !ok {
		q = &pairQueue{}
		d.pairs[key] = q
		i := sort.Search(len(d.keys), func(i int) bool { return d.keys[i] >= key })
		d.keys = append(d.keys, 0)
		copy(d.keys[i+1:], d.keys[i:])
		d.keys[i] = key
	}
	// Point-to-point FIFO: a delayed head delays everything behind it.
	if n := len(q.items); n > 0 && q.items[n-1].due > due {
		due = q.items[n-1].due
	}
	q.items = append(q.items, heldMsg{due: due, dst: dst, msg: msg})
	d.count++
}

// Sync sets the shim's clock. Call once per cycle before the wrapped
// transport ticks, so same-cycle deliveries are stamped correctly.
func (d *DelayShim) Sync(now uint64) { d.now = now }

// Release delivers every held message that is due, in per-pair FIFO
// order; with reordering enabled the pair runs are shuffled. Call
// after the wrapped transport's Tick so zero-delay messages still
// deliver in their arrival cycle.
func (d *DelayShim) Release() {
	if d.count == 0 {
		return
	}
	var runs [][]heldMsg
	for _, key := range d.keys {
		q := d.pairs[key]
		n := 0
		for n < len(q.items) && q.items[n].due <= d.now {
			n++
		}
		if n == 0 {
			continue
		}
		runs = append(runs, q.items[:n:n])
		q.items = q.items[n:]
	}
	if d.reorder && len(runs) > 1 {
		for i := len(runs) - 1; i > 0; i-- {
			j := d.in.rng.intn(i + 1)
			runs[i], runs[j] = runs[j], runs[i]
		}
	}
	for _, run := range runs {
		for _, h := range run {
			d.count--
			d.deliver(h.dst, h.msg)
		}
	}
}

// Pending reports messages the shim is holding.
func (d *DelayShim) Pending() int { return d.count }

// Name identifies the shim in diagnostics.
func (d *DelayShim) Name() string { return d.name }

// DigestState writes a canonical rendering of the shim's held
// messages, in sorted pair order and per-pair FIFO order, for
// checkpoint state digests.
func (d *DelayShim) DigestState(w io.Writer) {
	if d.count == 0 {
		return
	}
	fmt.Fprintf(w, "shim %s now=%d held=%d\n", d.name, d.now, d.count)
	for _, key := range d.keys {
		for _, h := range d.pairs[key].items {
			fmt.Fprintf(w, "held %d %d ", h.due, h.dst)
			h.msg.DigestInto(w)
		}
	}
}
