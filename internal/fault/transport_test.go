package fault

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// countingServer counts executions and returns a fixed body — enough
// to tell "request never arrived" from "reply was lost".
func countingServer(body []byte) (*httptest.Server, *atomic.Int64) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		io.Copy(io.Discard, r.Body)
		w.Write(body)
	}))
	return srv, &hits
}

func shimClient(cfg TransportConfig) *http.Client {
	return &http.Client{Transport: NewTransport(cfg, nil)}
}

// Each failure class at probability 1, so the behavior is exact, not
// statistical.

func TestTransportDropNeverReachesServer(t *testing.T) {
	srv, hits := countingServer([]byte("ok"))
	defer srv.Close()
	_, err := shimClient(TransportConfig{Seed: 1, DropProb: 1}).Get(srv.URL)
	if err == nil || !errors.Is(err, ErrInjectedDrop) {
		t.Fatalf("err = %v, want ErrInjectedDrop", err)
	}
	if hits.Load() != 0 {
		t.Fatalf("dropped request reached the server %d times", hits.Load())
	}
}

func TestTransportLostReplyExecutesServerSide(t *testing.T) {
	srv, hits := countingServer([]byte("ok"))
	defer srv.Close()
	_, err := shimClient(TransportConfig{Seed: 1, LostReplyProb: 1}).Get(srv.URL)
	if err == nil || !errors.Is(err, ErrInjectedDrop) {
		t.Fatalf("err = %v, want ErrInjectedDrop", err)
	}
	// The nasty case: the caller saw a transport error, but the server
	// DID execute — exactly what forces idempotent endpoint design.
	if hits.Load() != 1 {
		t.Fatalf("server executed %d times, want 1", hits.Load())
	}
}

func TestTransportDuplicateDeliversTwice(t *testing.T) {
	srv, hits := countingServer([]byte("ok"))
	defer srv.Close()
	resp, err := shimClient(TransportConfig{Seed: 1, DupProb: 1}).Get(srv.URL)
	if err != nil {
		t.Fatalf("dup request failed: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "ok" {
		t.Fatalf("body = %q", body)
	}
	if hits.Load() != 2 {
		t.Fatalf("server executed %d times, want 2 (original + duplicate)", hits.Load())
	}
}

func TestTransportDisconnectTearsBodyMidStream(t *testing.T) {
	payload := make([]byte, 1024)
	for i := range payload {
		payload[i] = byte(i)
	}
	srv, _ := countingServer(payload)
	defer srv.Close()
	resp, err := shimClient(TransportConfig{Seed: 1, DisconnectProb: 1}).Get(srv.URL)
	if err != nil {
		t.Fatalf("request failed outright: %v", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err == nil || !errors.Is(err, ErrInjectedDrop) {
		t.Fatalf("read err = %v, want mid-stream ErrInjectedDrop", err)
	}
	if len(data) == 0 || len(data) >= len(payload) {
		t.Fatalf("torn body delivered %d/%d bytes, want a strict partial prefix", len(data), len(payload))
	}
	for i, b := range data {
		if b != byte(i) {
			t.Fatalf("torn body corrupted at offset %d", i)
		}
	}
}

func TestTransportDelayHoldsResponse(t *testing.T) {
	srv, _ := countingServer([]byte("ok"))
	defer srv.Close()
	cfg := TransportConfig{Seed: 1, DelayProb: 1, DelayMax: 30 * time.Millisecond}
	start := time.Now()
	resp, err := shimClient(cfg).Get(srv.URL)
	if err != nil {
		t.Fatalf("delayed request failed: %v", err)
	}
	resp.Body.Close()
	if elapsed := time.Since(start); elapsed < time.Millisecond {
		t.Fatalf("no observable delay (%v)", elapsed)
	}
}

// TestTransportSeedDeterminism: one seed fixes the decision sequence —
// two shims with the same plan make identical drop decisions request
// by request.
func TestTransportSeedDeterminism(t *testing.T) {
	srv, _ := countingServer([]byte("ok"))
	defer srv.Close()
	outcomes := func(seed int64) []bool {
		client := shimClient(TransportConfig{Seed: seed, DropProb: 0.5})
		var out []bool
		for i := 0; i < 32; i++ {
			resp, err := client.Get(srv.URL)
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
			out = append(out, err == nil)
		}
		return out
	}
	a, b := outcomes(42), outcomes(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d diverged between identically seeded shims", i)
		}
	}
	c := outcomes(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced the identical 32-request decision sequence")
	}
}

func TestTransportDisabledPassthrough(t *testing.T) {
	if tr := NewTransport(TransportConfig{}, http.DefaultTransport); tr != http.DefaultTransport {
		t.Error("disabled plan did not return the wrapped transport unchanged")
	}
	var cfg TransportConfig
	if cfg.Enabled() {
		t.Error("zero config reports enabled")
	}
	if got := cfg.String(); got != "disabled" {
		t.Errorf("String() = %q", got)
	}
}
