package fault

// Transport-level fault injection for the distributed sweep service
// (internal/sweep), in the same idiom as the NoC/DRAM shims: a seeded
// deterministic perturbation schedule wrapped around an existing
// interface — here http.RoundTripper — so the coordinator/worker
// protocol is chaos-tested the way the coherence protocols are.
//
// The shim models the failure classes a real network serves up:
//
//   - dropped requests (never reach the server);
//   - lost replies (the server EXECUTED the request, the response
//     vanished — the nasty case that probes endpoint idempotency);
//   - duplicated requests (delivered twice; the server must tolerate
//     replays);
//   - delayed responses (held for a random interval, which also
//     reorders concurrent requests relative to each other);
//   - mid-stream disconnects (the response body is cut partway, so
//     decoders see a torn payload rather than a clean error).
//
// Unlike the simulator shims, wall-clock goroutine scheduling makes
// the end-to-end schedule only pseudo-deterministic: one seed fixes
// the decision SEQUENCE, while which request draws which decision
// depends on arrival order. That is the right fidelity for transport
// chaos — the service must survive every interleaving, not one.

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"
)

// ErrInjectedDrop marks a transport failure synthesized by the shim,
// so tests and logs can tell injected faults from real ones.
var ErrInjectedDrop = errors.New("fault: injected transport fault")

// TransportConfig is one transport fault plan. The zero value disables
// injection.
type TransportConfig struct {
	// Seed selects the deterministic decision stream.
	Seed int64

	// DropProb is the chance a request is dropped before reaching the
	// server (the caller sees a transport error).
	DropProb float64
	// LostReplyProb is the chance the request reaches the server and
	// executes, but the response is dropped. The caller cannot tell
	// this from DropProb — which is exactly what forces idempotent
	// endpoint design.
	LostReplyProb float64
	// DupProb is the chance a request is delivered twice back to back
	// (the first response is discarded, the second returned).
	DupProb float64
	// DelayProb is the chance a response is held for 1..DelayMax
	// before delivery; concurrent requests get reordered by it.
	DelayProb float64
	DelayMax  time.Duration
	// DisconnectProb is the chance the response body is cut mid-stream
	// after roughly half its bytes (decoders see a torn frame).
	DisconnectProb float64
}

// Enabled reports whether the plan perturbs anything.
func (c TransportConfig) Enabled() bool {
	return c.DropProb > 0 || c.LostReplyProb > 0 || c.DupProb > 0 ||
		c.DelayProb > 0 || c.DisconnectProb > 0
}

// String summarizes the plan for diagnostics.
func (c TransportConfig) String() string {
	if !c.Enabled() {
		return "disabled"
	}
	return fmt.Sprintf("seed=%d drop=%.2f lostreply=%.2f dup=%.2f delay=%.2f/%s disconnect=%.2f",
		c.Seed, c.DropProb, c.LostReplyProb, c.DupProb, c.DelayProb, c.DelayMax, c.DisconnectProb)
}

// ChaosTransport returns a moderately hostile all-knobs transport plan
// for the given seed — the counterpart of Chaos for the sweep wire.
func ChaosTransport(seed int64) TransportConfig {
	return TransportConfig{
		Seed:           seed,
		DropProb:       0.12,
		LostReplyProb:  0.08,
		DupProb:        0.12,
		DelayProb:      0.20,
		DelayMax:       15 * time.Millisecond,
		DisconnectProb: 0.08,
	}
}

// transportShim implements http.RoundTripper over a wrapped transport.
type transportShim struct {
	cfg  TransportConfig
	next http.RoundTripper

	mu  sync.Mutex
	rng *rng
}

// NewTransport wraps next with the fault plan. A disabled plan returns
// next unchanged. The shim is safe for concurrent use (HTTP transports
// are shared across goroutines); draws are serialized on a mutex so
// one seed fixes the decision sequence.
func NewTransport(cfg TransportConfig, next http.RoundTripper) http.RoundTripper {
	if !cfg.Enabled() {
		return next
	}
	if next == nil {
		next = http.DefaultTransport
	}
	return &transportShim{cfg: cfg, next: next, rng: newRNG(cfg.Seed)}
}

// decisions is one request's pre-drawn perturbation plan. Drawing all
// decisions up front (under the mutex) keeps the stream seed-stable
// regardless of how long each individual request takes.
type decisions struct {
	drop       bool
	lostReply  bool
	dup        bool
	delay      time.Duration
	disconnect bool
}

func (t *transportShim) draw() decisions {
	t.mu.Lock()
	defer t.mu.Unlock()
	var d decisions
	d.drop = t.rng.chance(t.cfg.DropProb)
	d.lostReply = t.rng.chance(t.cfg.LostReplyProb)
	d.dup = t.rng.chance(t.cfg.DupProb)
	if t.rng.chance(t.cfg.DelayProb) && t.cfg.DelayMax > 0 {
		d.delay = time.Duration(1 + t.rng.uint64n(uint64(t.cfg.DelayMax)))
	}
	d.disconnect = t.rng.chance(t.cfg.DisconnectProb)
	return d
}

// RoundTrip applies the drawn perturbations around the real transport.
func (t *transportShim) RoundTrip(req *http.Request) (*http.Response, error) {
	d := t.draw()
	if d.drop {
		return nil, fmt.Errorf("%w: request drop (%s %s)", ErrInjectedDrop, req.Method, req.URL.Path)
	}
	if d.dup {
		// Deliver the request once, discard that response entirely,
		// then deliver it again. The server observes two executions.
		if dupReq, err := cloneRequest(req); err == nil {
			if resp, err := t.next.RoundTrip(dupReq); err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}
	}
	resp, err := t.next.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if d.lostReply {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return nil, fmt.Errorf("%w: response drop after server execution (%s %s)", ErrInjectedDrop, req.Method, req.URL.Path)
	}
	if d.delay > 0 {
		time.Sleep(d.delay)
	}
	if d.disconnect {
		// Cut the body roughly in half: the caller's decoder sees a
		// torn payload mid-stream instead of a clean transport error.
		data, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr == nil && len(data) > 1 {
			cut := len(data) / 2
			resp.Body = io.NopCloser(io.MultiReader(
				bytes.NewReader(data[:cut]),
				&errReader{fmt.Errorf("%w: mid-stream disconnect after %d/%d bytes", ErrInjectedDrop, cut, len(data))},
			))
			resp.ContentLength = -1
			return resp, nil
		}
		return nil, fmt.Errorf("%w: disconnect", ErrInjectedDrop)
	}
	return resp, nil
}

// cloneRequest copies a request with a replayable body (requests built
// from byte buffers carry GetBody; others cannot be duplicated and the
// dup decision degrades to a plain single delivery).
func cloneRequest(req *http.Request) (*http.Request, error) {
	if req.Body != nil && req.GetBody == nil {
		return nil, errors.New("fault: request body not replayable")
	}
	c := req.Clone(req.Context())
	if req.GetBody != nil {
		body, err := req.GetBody()
		if err != nil {
			return nil, err
		}
		c.Body = body
	}
	return c, nil
}

// errReader yields err on every read — the torn tail of a disconnected
// response body.
type errReader struct{ err error }

func (r *errReader) Read([]byte) (int, error) { return 0, r.err }
