// Package fault is a seeded, deterministic fault-injection layer for
// the simulated memory hierarchy. It wraps existing components behind
// their current interfaces:
//
//   - a NoC shim that perturbs delivery latency, reorders same-cycle
//     arrivals across source/destination pairs (point-to-point FIFO
//     order is preserved, as virtual-channel networks guarantee), and
//     transiently rejects injection to amplify backpressure;
//   - a DRAM shim that adds latency spikes to read fills;
//   - a timestamp-stress mode that starts G-TSC counters near
//     wraparound (and shortens TC leases) so rollover/renewal paths
//     run constantly instead of once per billion cycles.
//
// Every perturbation is drawn from one xorshift64* stream seeded by
// Config.Seed, so a failing schedule replays exactly from its seed.
package fault

import (
	"fmt"

	"github.com/gtsc-sim/gtsc/internal/coherence"
	"github.com/gtsc-sim/gtsc/internal/mem"
)

// Config is one fault-injection plan. The zero value disables
// injection entirely.
type Config struct {
	// Seed selects the deterministic perturbation schedule. A plan
	// with Seed 0 and no knobs set is disabled.
	Seed int64

	// DelayProb is the chance (0..1) an arriving NoC message is held
	// for an extra 1..DelayMax cycles.
	DelayProb float64
	DelayMax  uint64
	// Reorder shuffles the delivery order of same-cycle arrivals
	// across (src,dst) pairs.
	Reorder bool
	// RejectProb is the chance (0..1) a NoC injection attempt is
	// transiently rejected even when the port has room, forcing the
	// controller down its retry/backpressure path.
	RejectProb float64

	// DRAMSpikeProb is the chance a DRAM read fill is delayed by an
	// extra 1..DRAMSpikeMax cycles.
	DRAMSpikeProb float64
	DRAMSpikeMax  uint64

	// TSStress starts G-TSC warp/memory timestamps near the
	// wraparound point so the §V-D overflow reset fires within the
	// first few accesses of every kernel, and shortens TC leases so
	// expiry/renewal churn is constant.
	TSStress bool
}

// Enabled reports whether the plan perturbs anything.
func (c Config) Enabled() bool {
	return c.DelayProb > 0 || c.Reorder || c.RejectProb > 0 ||
		c.DRAMSpikeProb > 0 || c.TSStress
}

// String summarizes the plan for diagnostics.
func (c Config) String() string {
	if !c.Enabled() {
		return "disabled"
	}
	return fmt.Sprintf("seed=%d delay=%.2f/%d reorder=%v reject=%.2f dramspike=%.2f/%d tsstress=%v",
		c.Seed, c.DelayProb, c.DelayMax, c.Reorder, c.RejectProb,
		c.DRAMSpikeProb, c.DRAMSpikeMax, c.TSStress)
}

// Chaos returns a moderately hostile all-knobs plan for the given
// seed: delivery jitter, cross-pair reordering, transient injection
// rejects, DRAM spikes and timestamp stress.
func Chaos(seed int64) Config {
	return Config{
		Seed:          seed,
		DelayProb:     0.25,
		DelayMax:      24,
		Reorder:       true,
		RejectProb:    0.10,
		DRAMSpikeProb: 0.20,
		DRAMSpikeMax:  300,
		TSStress:      true,
	}
}

// rng is the same xorshift64* generator the workload package uses, so
// fault schedules are reproducible without math/rand.
type rng struct{ s uint64 }

func newRNG(seed int64) *rng {
	s := uint64(seed)
	if s == 0 {
		s = 0x9E3779B97F4A7C15
	}
	return &rng{s: s}
}

func (r *rng) next() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545F4914F6CDD1D
}

// chance returns true with probability p, consuming one draw.
func (r *rng) chance(p float64) bool {
	if p <= 0 {
		return false
	}
	// 53-bit uniform in [0,1).
	return float64(r.next()>>11)/(1<<53) < p
}

// uint64n returns a value in [0, n).
func (r *rng) uint64n(n uint64) uint64 { return r.next() % n }

// intn returns a value in [0, n).
func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// Injector owns the perturbation stream of one simulated machine. All
// shims built from one Injector share its RNG, and all draws happen in
// deterministic simulation order, so one seed fixes the whole
// schedule.
type Injector struct {
	cfg Config
	rng *rng
}

// NewInjector builds the injector for a plan.
func NewInjector(cfg Config) *Injector {
	return &Injector{cfg: cfg, rng: newRNG(cfg.Seed)}
}

// Config returns the plan this injector executes.
func (in *Injector) Config() Config { return in.cfg }

// WrapSender interposes transient injection rejection on a NoC
// injection path. A rejected TrySend is indistinguishable from a full
// port, so controllers exercise their retry/backpressure machinery.
func (in *Injector) WrapSender(s coherence.Sender) coherence.Sender {
	if in.cfg.RejectProb <= 0 {
		return s
	}
	return coherence.SenderFunc(func(msg *mem.Msg) bool {
		if in.rng.chance(in.cfg.RejectProb) {
			return false
		}
		return s.TrySend(msg)
	})
}

// RNGState exposes the injector's current RNG position, for checkpoint
// state digests: two machines with equal state must also agree on
// every future perturbation draw.
func (in *Injector) RNGState() uint64 { return in.rng.s }
