// Package fault is a seeded, deterministic fault-injection layer for
// the simulated memory hierarchy. It wraps existing components behind
// their current interfaces:
//
//   - a NoC shim that perturbs delivery latency, reorders same-cycle
//     arrivals across source/destination pairs (point-to-point FIFO
//     order is preserved, as virtual-channel networks guarantee), and
//     transiently rejects injection to amplify backpressure;
//   - a DRAM shim that adds latency spikes to read fills;
//   - a timestamp-stress mode that starts G-TSC counters near
//     wraparound (and shortens TC leases) so rollover/renewal paths
//     run constantly instead of once per billion cycles.
//
// Every perturbation is drawn from one xorshift64* stream seeded by
// Config.Seed, so a failing schedule replays exactly from its seed.
package fault

import (
	"fmt"

	"github.com/gtsc-sim/gtsc/internal/coherence"
	"github.com/gtsc-sim/gtsc/internal/mem"
)

// Config is one fault-injection plan. The zero value disables
// injection entirely.
type Config struct {
	// Seed selects the deterministic perturbation schedule. A plan
	// with Seed 0 and no knobs set is disabled.
	Seed int64

	// DelayProb is the chance (0..1) an arriving NoC message is held
	// for an extra 1..DelayMax cycles.
	DelayProb float64
	DelayMax  uint64
	// Reorder shuffles the delivery order of same-cycle arrivals
	// across (src,dst) pairs.
	Reorder bool
	// RejectProb is the chance (0..1) a NoC injection attempt is
	// transiently rejected even when the port has room, forcing the
	// controller down its retry/backpressure path.
	RejectProb float64

	// DRAMSpikeProb is the chance a DRAM read fill is delayed by an
	// extra 1..DRAMSpikeMax cycles.
	DRAMSpikeProb float64
	DRAMSpikeMax  uint64

	// TSStress starts G-TSC warp/memory timestamps near the
	// wraparound point so the §V-D overflow reset fires within the
	// first few accesses of every kernel, and shortens TC leases so
	// expiry/renewal churn is constant.
	TSStress bool

	// RolloverEvery forces a §V-D chip-wide timestamp rollover roughly
	// every N cycles during kernel execution (0 = never), regardless of
	// how far the counters are from natural overflow. Each firing point
	// is drawn as Every±Jitter from the seeded stream, so a plan
	// replays exactly from its seed. Intervals are floored at
	// rolloverFloor cycles: a reset storm faster than the hierarchy's
	// round-trip time livelocks L1 refetches instead of testing the
	// epoch-crossing paths. Only G-TSC honors the schedule; other
	// protocols ignore it.
	RolloverEvery  uint64
	RolloverJitter uint64
}

// rolloverFloor is the minimum spacing between forced rollovers; see
// Config.RolloverEvery.
const rolloverFloor = 500

// Enabled reports whether the plan perturbs anything.
func (c Config) Enabled() bool {
	return c.DelayProb > 0 || c.Reorder || c.RejectProb > 0 ||
		c.DRAMSpikeProb > 0 || c.TSStress || c.RolloverEvery > 0
}

// String summarizes the plan for diagnostics.
func (c Config) String() string {
	if !c.Enabled() {
		return "disabled"
	}
	return fmt.Sprintf("seed=%d delay=%.2f/%d reorder=%v reject=%.2f dramspike=%.2f/%d tsstress=%v rollover=%d±%d",
		c.Seed, c.DelayProb, c.DelayMax, c.Reorder, c.RejectProb,
		c.DRAMSpikeProb, c.DRAMSpikeMax, c.TSStress,
		c.RolloverEvery, c.RolloverJitter)
}

// Chaos returns a moderately hostile all-knobs plan for the given
// seed: delivery jitter, cross-pair reordering, transient injection
// rejects, DRAM spikes and timestamp stress.
func Chaos(seed int64) Config {
	return Config{
		Seed:          seed,
		DelayProb:     0.25,
		DelayMax:      24,
		Reorder:       true,
		RejectProb:    0.10,
		DRAMSpikeProb: 0.20,
		DRAMSpikeMax:  300,
		TSStress:      true,
	}
}

// ChaosRollover is Chaos plus a forced-rollover schedule: on top of
// the near-wraparound start (TSStress), a §V-D reset is forced roughly
// every 2000±1500 cycles, so epochs churn continuously for the whole
// kernel instead of only when a counter overflows.
func ChaosRollover(seed int64) Config {
	c := Chaos(seed)
	c.RolloverEvery = 2000
	c.RolloverJitter = 1500
	return c
}

// rng is the same xorshift64* generator the workload package uses, so
// fault schedules are reproducible without math/rand.
type rng struct{ s uint64 }

func newRNG(seed int64) *rng {
	s := uint64(seed)
	if s == 0 {
		s = 0x9E3779B97F4A7C15
	}
	return &rng{s: s}
}

func (r *rng) next() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545F4914F6CDD1D
}

// chance returns true with probability p, consuming one draw.
func (r *rng) chance(p float64) bool {
	if p <= 0 {
		return false
	}
	// 53-bit uniform in [0,1).
	return float64(r.next()>>11)/(1<<53) < p
}

// uint64n returns a value in [0, n).
func (r *rng) uint64n(n uint64) uint64 { return r.next() % n }

// intn returns a value in [0, n).
func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// Injector owns the perturbation stream of one simulated machine.
// Shims whose draws happen in serial hierarchy phases (delay shims,
// DRAM spikes, rollovers, L2->L1 rejects) share the injector's main
// RNG; the L1->L2 injection-reject path draws from per-lane streams
// instead (see LaneReject), so the draw order is fixed by each lane's
// own program order and the schedule replays identically whether SMs
// tick serially or on the staged parallel pool.
type Injector struct {
	cfg   Config
	rng   *rng
	lanes []*rng // per-lane streams handed out by LaneReject, in lane order

	// nextRollover is the cycle at which the next forced §V-D reset
	// fires (0 = schedule not armed). Re-armed per kernel by
	// ArmRollover so every kernel sees the plan from its own start.
	nextRollover uint64
}

// NewInjector builds the injector for a plan.
func NewInjector(cfg Config) *Injector {
	return &Injector{cfg: cfg, rng: newRNG(cfg.Seed)}
}

// Config returns the plan this injector executes.
func (in *Injector) Config() Config { return in.cfg }

// WrapSender interposes transient injection rejection on a NoC
// injection path. A rejected TrySend is indistinguishable from a full
// port, so controllers exercise their retry/backpressure machinery.
func (in *Injector) WrapSender(s coherence.Sender) coherence.Sender {
	if in.cfg.RejectProb <= 0 {
		return s
	}
	return coherence.SenderFunc(func(msg *mem.Msg) bool {
		if in.rng.chance(in.cfg.RejectProb) {
			return false
		}
		return s.TrySend(msg)
	})
}

// LaneReject returns the transient-rejection draw for one injection
// lane (an L1's private path into the NoC). Each lane owns its own
// xorshift64* stream, derived deterministically from the plan seed and
// the lane index, so a lane's draw sequence depends only on how many
// sends that lane has attempted — not on how SM ticks interleave with
// other lanes. That makes the fault schedule identical between the
// serial loop, the staged parallel tick, and any replay of either.
// Returns nil when the plan never rejects, so hot paths can skip the
// draw entirely.
func (in *Injector) LaneReject(lane int) func() bool {
	if in.cfg.RejectProb <= 0 {
		return nil
	}
	for len(in.lanes) <= lane {
		// SplitMix64-style mix of (seed, lane) so adjacent lanes get
		// well-separated streams even for small seeds.
		z := uint64(in.cfg.Seed) + 0x9E3779B97F4A7C15*uint64(len(in.lanes)+1)
		z ^= z >> 30
		z *= 0xBF58476D1CE4E5B9
		z ^= z >> 27
		z *= 0x94D049BB133111EB
		z ^= z >> 31
		if z == 0 {
			z = 0x9E3779B97F4A7C15
		}
		in.lanes = append(in.lanes, &rng{s: z})
	}
	r := in.lanes[lane]
	p := in.cfg.RejectProb
	return func() bool { return r.chance(p) }
}

// ArmRollover (re)seeds the forced-rollover schedule for a kernel
// whose run phase starts at cycle now. A no-op for plans without
// RolloverEvery. Draws come from the injector's single stream in
// deterministic simulation order, so the schedule replays from the
// seed like every other perturbation.
func (in *Injector) ArmRollover(now uint64) {
	if in.cfg.RolloverEvery == 0 {
		return
	}
	in.nextRollover = now + in.drawRolloverGap()
}

// RolloverDue reports whether a forced rollover fires at cycle now,
// advancing the schedule when it does. The caller (the cycle engine)
// is responsible for actually triggering the reset.
func (in *Injector) RolloverDue(now uint64) bool {
	if in.nextRollover == 0 || now < in.nextRollover {
		return false
	}
	in.nextRollover = now + in.drawRolloverGap()
	return true
}

// NextRollover exposes the armed schedule point (0 = unarmed), for
// state digests: machines with equal state must agree on when the next
// forced reset lands.
func (in *Injector) NextRollover() uint64 { return in.nextRollover }

// drawRolloverGap draws one Every±Jitter interval, floored so resets
// cannot outrun the hierarchy's round-trip time.
func (in *Injector) drawRolloverGap() uint64 {
	gap := int64(in.cfg.RolloverEvery)
	if j := in.cfg.RolloverJitter; j > 0 {
		gap += int64(in.rng.uint64n(2*j+1)) - int64(j)
	}
	if gap < rolloverFloor {
		gap = rolloverFloor
	}
	return uint64(gap)
}

// RNGState exposes the injector's current RNG position — the main
// stream folded with every per-lane stream — for checkpoint state
// digests: two machines with equal state must also agree on every
// future perturbation draw on every path.
func (in *Injector) RNGState() uint64 {
	s := in.rng.s
	for i, l := range in.lanes {
		s ^= l.s * (0x9E3779B97F4A7C15 ^ uint64(i+1))
	}
	return s
}
